"""A small DMX-style query language for mining queries (paper Section 2.2).

The paper's systems expose mining predicates through SQL dialects — DMX's
``PREDICTION JOIN`` on Analysis Server, UDFs on DB2.  This module provides
the same front door: a parser for a compact prediction-join dialect that
produces :class:`~repro.core.optimizer.MiningQuery` objects the optimizer
and executor consume.

Grammar (case-insensitive keywords)::

    query      := SELECT '*' FROM table
                  [ PREDICTION JOIN model [alias] { ',' model [alias] } ]
                  [ WHERE condition { AND condition } ]
    condition  := ref op literal
                | ref IN '(' literal {',' literal} ')'
                | ref BETWEEN literal AND literal
                | ref '=' ref
    ref        := [alias '.'] column
    op         := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='

A reference whose alias names a joined model denotes that model's
prediction column; plain references (or the table alias) denote data
columns.  ``model.pred = model2.pred`` becomes a prediction-join predicate,
``model.pred = column`` a prediction-to-column join — the Section 4.1
forms.  Conditions are conjunctive, as in the paper's examples.

Example::

    parse_dmx(
        "SELECT * FROM customers "
        "PREDICTION JOIN Risk_Class M "
        "WHERE M.Risk = 'low' AND age > 30",
        catalog,
    )
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.catalog import ModelCatalog
from repro.core.optimizer import MiningQuery
from repro.core.predicates import (
    Comparison,
    Interval,
    Op,
    Predicate,
    Value,
    conjunction,
    in_set,
)
from repro.core.rewrite import (
    MiningPredicate,
    PredictionEquals,
    PredictionIn,
    PredictionJoinColumn,
    PredictionJoinPrediction,
)
from repro.exceptions import RewriteError

_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<string>'(?:[^']|'')*')"
    r"|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<bracket>\[[^\]]+\])"
    r"|(?P<op><>|!=|<=|>=|=|<|>|\(|\)|,|\.|\*)"
    r")"
)

_OPS = {
    "=": Op.EQ,
    "<>": Op.NE,
    "!=": Op.NE,
    "<": Op.LT,
    "<=": Op.LE,
    ">": Op.GT,
    ">=": Op.GE,
}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if not match or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise RewriteError(f"cannot tokenize DMX near {remainder[:25]!r}")
        position = match.end()
        for kind in ("string", "number", "name", "bracket", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], catalog: ModelCatalog) -> None:
        self._tokens = tokens
        self._position = 0
        self._catalog = catalog
        #: alias (lowercased) -> model name, for joined models.
        self._models: dict[str, str] = {}
        self._table = ""
        self._table_alias: str | None = None

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise RewriteError("unexpected end of DMX query")
        self._position += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._next()
        if token.kind != "name" or token.text.upper() != keyword:
            raise RewriteError(
                f"expected {keyword}, found {token.text!r}"
            )

    def _keyword_ahead(self, keyword: str) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind == "name"
            and token.text.upper() == keyword
        )

    def _name(self) -> str:
        token = self._next()
        if token.kind == "bracket":
            return token.text[1:-1]
        if token.kind == "name":
            return token.text
        raise RewriteError(f"expected a name, found {token.text!r}")

    def _literal(self) -> Value:
        token = self._next()
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "number":
            text = token.text
            return float(text) if "." in text else int(text)
        raise RewriteError(f"expected a literal, found {token.text!r}")

    # -- grammar ------------------------------------------------------------

    def parse(self) -> MiningQuery:
        self._expect_keyword("SELECT")
        star = self._next()
        if star.text != "*":
            raise RewriteError("only SELECT * is supported")
        self._expect_keyword("FROM")
        self._table = self._name()
        if (
            self._peek() is not None
            and self._peek().kind == "name"
            and self._peek().text.upper() not in ("PREDICTION", "WHERE")
        ):
            self._table_alias = self._next().text.lower()
        if self._keyword_ahead("PREDICTION"):
            self._next()
            self._expect_keyword("JOIN")
            self._parse_model_list()
        relational: list[Predicate] = []
        mining: list[MiningPredicate] = []
        if self._keyword_ahead("WHERE"):
            self._next()
            while True:
                self._parse_condition(relational, mining)
                if self._keyword_ahead("AND"):
                    self._next()
                    continue
                break
        if self._peek() is not None:
            raise RewriteError(
                f"unexpected trailing token {self._peek().text!r}"
            )
        return MiningQuery(
            self._table,
            relational_predicate=conjunction(relational),
            mining_predicates=tuple(mining),
        )

    def _parse_model_list(self) -> None:
        while True:
            model_name = self._name()
            self._catalog.model(model_name)  # validates registration
            alias = model_name
            token = self._peek()
            if (
                token is not None
                and token.kind == "name"
                and token.text.upper() not in ("WHERE", "AND")
            ):
                alias = self._next().text
            self._models[alias.lower()] = model_name
            self._models.setdefault(model_name.lower(), model_name)
            if self._peek() is not None and self._peek().text == ",":
                self._next()
                continue
            break

    def _parse_ref(self) -> tuple[str | None, str]:
        """Returns ``(model_name or None, column/prediction name)``."""
        first = self._name()
        if self._peek() is not None and self._peek().text == ".":
            self._next()
            second = self._name()
            alias = first.lower()
            if alias in self._models:
                return self._models[alias], second
            if self._table_alias is not None and alias == self._table_alias:
                return None, second
            if alias == self._table.lower():
                return None, second
            raise RewriteError(f"unknown alias {first!r}")
        return None, first

    def _parse_condition(
        self,
        relational: list[Predicate],
        mining: list[MiningPredicate],
    ) -> None:
        model, column = self._parse_ref()
        if self._keyword_ahead("IN"):
            self._next()
            values = self._parse_literal_list()
            if model is not None:
                mining.append(PredictionIn(model, tuple(values)))
            else:
                relational.append(in_set(column, values))
            return
        if self._keyword_ahead("BETWEEN"):
            self._next()
            low = self._literal()
            self._expect_keyword("AND")
            high = self._literal()
            if model is not None:
                raise RewriteError(
                    "BETWEEN on a prediction column is not supported here; "
                    "use repro.core.regression_envelope.PredictionBetween"
                )
            relational.append(Interval(column, low, high))
            return
        op_token = self._next()
        if op_token.text not in _OPS:
            raise RewriteError(
                f"expected a comparison operator, found {op_token.text!r}"
            )
        op = _OPS[op_token.text]
        # Right-hand side: literal or reference.
        token = self._peek()
        if token is not None and token.kind in ("name", "bracket"):
            rhs_model, rhs_column = self._parse_ref()
            if op is not Op.EQ:
                raise RewriteError(
                    "column-to-column conditions support '=' only"
                )
            if model is not None and rhs_model is not None:
                mining.append(PredictionJoinPrediction(model, rhs_model))
            elif model is not None:
                mining.append(PredictionJoinColumn(model, rhs_column))
            elif rhs_model is not None:
                mining.append(PredictionJoinColumn(rhs_model, column))
            else:
                raise RewriteError(
                    "data-column-to-data-column joins are not supported"
                )
            return
        value = self._literal()
        if model is not None:
            if op is not Op.EQ:
                raise RewriteError(
                    "prediction columns support '=' and IN predicates"
                )
            mining.append(PredictionEquals(model, value))
        else:
            relational.append(Comparison(column, op, value))

    def _parse_literal_list(self) -> list[Value]:
        token = self._next()
        if token.text != "(":
            raise RewriteError("expected '(' after IN")
        values = [self._literal()]
        while True:
            token = self._next()
            if token.text == ")":
                return values
            if token.text != ",":
                raise RewriteError(
                    f"expected ',' or ')' in IN list, found {token.text!r}"
                )
            values.append(self._literal())


def parse_dmx(text: str, catalog: ModelCatalog) -> MiningQuery:
    """Parse a DMX-style prediction-join query into a :class:`MiningQuery`.

    Joined models must already be registered in ``catalog`` (so aliases and
    prediction columns can be resolved, exactly as Analysis Server resolves
    them against its model store).
    """
    return _Parser(_tokenize(text), catalog).parse()
