"""Mining-query execution over the relational store (PREDICTION JOIN).

This is the user-facing integration layer mirroring the systems of paper
Section 2: a :class:`PredictionJoinExecutor` applies registered mining
models to a table's rows, filtered by mining predicates, with two execution
strategies:

* **extract-and-mine** (Section 2.1) — evaluate only the relational
  predicate in SQL, fetch everything that survives, apply the model to each
  fetched row, and filter on the predicted label;
* **optimized** (Section 4) — inject upper envelopes into the WHERE clause
  so the engine can use indexed access paths (or a constant scan when an
  envelope is FALSE), then apply the model only to the rows the envelope
  admits.

Both strategies return the same rows (verified by the integration tests);
they differ in how many rows cross the SQL boundary and in the physical
plan, which is exactly the effect the paper measures.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.catalog import ModelCatalog
from repro.core.columns import ColumnBatch
from repro.core.optimizer import (
    DEFAULT_MAX_DISJUNCTS,
    MiningQuery,
    OptimizedQuery,
    optimize,
)
from repro.core.predicates import (
    TRUE,
    Predicate,
    SelectivityEstimator,
    TruePredicate,
    Value,
)
from repro.core.rewrite import MiningPredicate
from repro.exceptions import ModelError
from repro.sql.compiler import select_statement
from repro.sql.database import Database, Row
from repro.sql.planner import (
    FULL_SCAN_PLAN,
    Plan,
    capture_plan,
    capture_select_plan,
)
from repro.sql.calibration import CalibratedEstimator, CalibrationStore
from repro.sql.plancache import PlanCache
from repro.sql.stats import (
    TableStats,
    build_table_stats,
    record_estimator_accuracy,
)

#: Per-model predicted labels aligned positionally with a result row set.
PredictionStore = Mapping[str, tuple[Value, ...]]


@dataclass(frozen=True)
class ExecutionReport:
    """Everything observed while executing one mining query.

    ``rows_fetched`` counts rows crossing the SQL boundary; ``rows`` is the
    final result after residual model application.  ``sql_seconds`` and
    ``model_seconds`` split the cost the way the paper's discussion does
    (its timings exclude model invocation; ours reports both).
    """

    strategy: str
    rows: tuple[Row, ...]
    rows_fetched: int
    sql_seconds: float
    model_seconds: float
    plan: Plan
    optimized: OptimizedQuery | None = None
    #: Model predictions memoized during the residual filter, keyed by
    #: model name and aligned with ``rows`` — so downstream consumers
    #: (e.g. :meth:`PredictionJoinExecutor.predictions`) never re-score
    #: rows the executor already scored.
    predictions: PredictionStore | None = None
    #: Selectivity of the final pushed predicate: the estimate the
    #: executor acted on (calibrated when a calibration store is wired)
    #: and the measured fraction — ``None`` on paths that never
    #: estimate (naive strategy, gate disabled without calibration).
    estimated_selectivity: float | None = None
    actual_selectivity: float | None = None

    @property
    def total_seconds(self) -> float:
        return self.sql_seconds + self.model_seconds

    @property
    def rows_returned(self) -> int:
        return len(self.rows)


class PredictionJoinExecutor:
    """Executes :class:`MiningQuery` objects against one database.

    ``selectivity_gate`` implements the paper's Section 4.2 mitigation
    ("simplification based on selectivity estimates"): an injected envelope
    whose estimated selectivity exceeds the gate is stripped before
    execution, because indexed access paths only pay off for selective
    predicates (the paper observes the optimizer "rarely selects indexes"
    above roughly 10% selectivity).  Set it to ``None`` to always push the
    envelope regardless of selectivity.

    ``vectorized`` selects the residual-filter implementation: the default
    scores fetched rows in columnar batches of ``batch_size`` rows through
    each model's ``predict_batch``; ``False`` falls back to the scalar
    row-at-a-time path.  Both paths memoize predictions per (model, row),
    and both return identical rows — the knob trades nothing but speed.
    """

    def __init__(
        self,
        db: Database,
        catalog: ModelCatalog,
        selectivity_gate: float | None = 0.2,
        stats_sample: int = 10_000,
        plan_cache: "PlanCache | None" = None,
        vectorized: bool = True,
        batch_size: int = 2048,
        stats_cache: "dict[str, TableStats] | None" = None,
        calibration: "CalibrationStore | None" = None,
    ) -> None:
        if batch_size < 1:
            raise ModelError(f"batch_size must be >= 1, got {batch_size}")
        self._db = db
        self._catalog = catalog
        self._selectivity_gate = selectivity_gate
        self._stats_sample = stats_sample
        # ``stats_cache`` may be shared between executors over the same
        # data (the serving layer passes one dict to every worker).  Stats
        # building is deterministic, so a racing double-build stores
        # identical values — wasted work at worst, never divergence.
        self._stats_cache: dict[str, TableStats] = (
            stats_cache if stats_cache is not None else {}
        )
        self._plan_cache = plan_cache
        self._vectorized = vectorized
        self._batch_size = batch_size
        # The calibration store is shared the same way the stats cache
        # is: every executor over the same data feeds and reads one
        # store, so observations from any worker improve every worker's
        # estimates.  Calibration steers physical decisions only —
        # gating, operand ordering, plan reuse — never result rows.
        self._calibration = calibration

    @property
    def vectorized(self) -> bool:
        """Whether the residual filter runs in columnar batches."""
        return self._vectorized

    @property
    def batch_size(self) -> int:
        """Rows per columnar batch on the vectorized path."""
        return self._batch_size

    @property
    def calibration(self) -> "CalibrationStore | None":
        """The shared selectivity-calibration store (``None`` = open loop)."""
        return self._calibration

    def _table_stats(self, table: str) -> TableStats:
        if table not in self._stats_cache:
            sample = self._db.sample_rows(table, self._stats_sample)
            self._stats_cache[table] = build_table_stats(
                table, sample, row_count=self._db.row_count(table)
            )
        return self._stats_cache[table]

    # -- residual model application ---------------------------------------

    def _apply_mining_predicates(
        self,
        fetched: Sequence[Row],
        predicates: Sequence[MiningPredicate],
        envelopes: Sequence[Predicate] | None = None,
        estimator: SelectivityEstimator | None = None,
    ) -> tuple[tuple[Row, ...], dict[str, tuple[Value, ...]]]:
        """Rows of ``fetched`` satisfying every mining predicate, plus the
        per-model predictions memoized for the surviving rows.

        ``envelopes``, when given, holds each predicate's upper envelope
        (positionally aligned).  An envelope is a superset of its
        predicate, so rows failing it cannot pass the predicate — it is
        applied first as a cheap columnar prefilter before the model runs.
        The executor only passes envelopes that were *not* pushed into
        SQL; a pushed envelope has already filtered the fetch.

        Both the vectorized and scalar paths memoize predictions per
        (model, row), so several predicates over one model score each row
        once.  The second return value surfaces those memos (model name ->
        labels aligned with the surviving rows) so callers that need
        prediction columns never invoke the models again.
        """
        if not predicates:
            return tuple(fetched), {}
        if not self._vectorized:
            selected: list[Row] = []
            row_caches: list[dict[str, Value]] = []
            for row in fetched:
                cache: dict[str, Value] = {}
                if all(
                    predicate.evaluate_cached(row, self._catalog, cache)
                    for predicate in predicates
                ):
                    selected.append(row)
                    row_caches.append(cache)
            self._count_residual(len(fetched), len(selected))
            return tuple(selected), _collect_row_predictions(row_caches)
        survivors: list[Row] = []
        predictions: dict[str, list[Value]] | None = None
        step = self._batch_size
        for start in range(0, len(fetched), step):
            batch_rows, batch_predictions = self._filter_batch(
                fetched[start : start + step],
                predicates,
                envelopes,
                estimator,
            )
            if not batch_rows:
                continue
            survivors.extend(batch_rows)
            if predictions is None:
                predictions = batch_predictions
            else:
                # A model memoized in one chunk but not another (possible
                # only with exotic predicates that bypass the cache) cannot
                # be stitched back together; drop it and let callers
                # re-score.
                for name in list(predictions):
                    chunk_values = batch_predictions.get(name)
                    if chunk_values is None:
                        del predictions[name]
                    else:
                        predictions[name].extend(chunk_values)
        self._count_residual(len(fetched), len(survivors))
        store = {
            name: tuple(values)
            for name, values in (predictions or {}).items()
            if len(values) == len(survivors)
        }
        return tuple(survivors), store

    def _count_residual(self, rows_in: int, rows_out: int) -> None:
        if obs.enabled():
            obs.add_counter("executor.residual.rows_in", rows_in)
            obs.add_counter("executor.residual.rows_out", rows_out)

    def _filter_batch(
        self,
        chunk: Sequence[Row],
        predicates: Sequence[MiningPredicate],
        envelopes: Sequence[Predicate] | None,
        estimator: SelectivityEstimator | None,
    ) -> tuple[list[Row], dict[str, list[Value]]]:
        """Vectorized filter of one batch with short-circuit compaction.

        After each predicate, rows already ruled out are compacted away
        (``ColumnBatch.take``), and the per-model prediction memo is
        sliced in lockstep so cached predictions stay row-aligned.  The
        surviving slice of that memo is returned alongside the rows.
        """
        batch = ColumnBatch(chunk)
        cache: dict[str, np.ndarray] = {}
        alive: np.ndarray | None = None  # chunk indices still in play
        for index, predicate in enumerate(predicates):
            envelope = (
                envelopes[index] if envelopes is not None else None
            )
            if envelope is not None and not isinstance(
                envelope, TruePredicate
            ):
                mask = envelope.evaluate_batch(batch, estimator)
                batch, cache, alive = _compact(batch, cache, alive, mask)
                if len(batch) == 0:
                    return [], {}
            mask = predicate.evaluate_batch(batch, self._catalog, cache)
            batch, cache, alive = _compact(batch, cache, alive, mask)
            if len(batch) == 0:
                return [], {}
        # ``cache`` arrays were sliced in lockstep with every compaction,
        # so they are aligned with the surviving rows.
        predictions = {name: list(values) for name, values in cache.items()}
        if alive is None:
            return list(chunk), predictions
        return [chunk[i] for i in alive], predictions

    def execute_naive(self, query: MiningQuery) -> ExecutionReport:
        """Extract-and-mine: SQL evaluates only the relational predicate."""
        with obs.span(
            "execute.naive", table=query.table
        ) as execute_span:
            sql = select_statement(query.table, query.relational_predicate)
            plan = capture_plan(
                self._db, query.table, query.relational_predicate
            )
            with obs.span("execute.sql", table=query.table) as sql_span:
                started = time.perf_counter()
                fetched = self._db.query_rows(sql)
                sql_seconds = time.perf_counter() - started
                sql_span.set("rows_fetched", len(fetched))

            with obs.span("execute.model", table=query.table) as model_span:
                started = time.perf_counter()
                rows, predictions = self._apply_mining_predicates(
                    fetched, query.mining_predicates
                )
                model_seconds = time.perf_counter() - started
                model_span.update(rows_in=len(fetched), rows_out=len(rows))
            execute_span.update(
                rows_fetched=len(fetched),
                rows_returned=len(rows),
                sql_seconds=sql_seconds,
                model_seconds=model_seconds,
            )
            return ExecutionReport(
                strategy="extract-and-mine",
                rows=rows,
                rows_fetched=len(fetched),
                sql_seconds=sql_seconds,
                model_seconds=model_seconds,
                plan=plan,
                predictions=predictions,
            )

    def execute_optimized(
        self,
        query: MiningQuery,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    ) -> ExecutionReport:
        """Envelope-injected execution (paper Section 4).

        The residual model application keeps semantics exact even for loose
        envelopes; a FALSE pushable predicate returns immediately with a
        constant-scan plan and zero data access.
        """
        with obs.span(
            "execute.optimized", table=query.table
        ) as execute_span:
            stats: TableStats | None = None
            estimator: CalibratedEstimator | None = None
            if (
                self._selectivity_gate is not None
                or self._calibration is not None
            ):
                stats = self._table_stats(query.table)
                estimator = CalibratedEstimator(stats, self._calibration)
            if self._plan_cache is not None:
                optimized = self._plan_cache.get_or_optimize(
                    query,
                    self._catalog,
                    calibrated=estimator,
                    max_disjuncts=max_disjuncts,
                )
            else:
                optimized = optimize(
                    query, self._catalog, max_disjuncts=max_disjuncts
                )
            if optimized.constant_false:
                execute_span.update(constant_false=True, rows_returned=0)
                return ExecutionReport(
                    strategy="optimized",
                    rows=(),
                    rows_fetched=0,
                    sql_seconds=0.0,
                    model_seconds=0.0,
                    plan=capture_plan(
                        self._db, query.table, optimized.pushable_predicate
                    ),
                    optimized=optimized,
                    predictions={},
                )
            pushable = optimized.pushable_predicate
            envelopes: list[Predicate] | None = None
            acted_estimate: float | None = None
            if estimator is not None:
                acted_estimate = estimator(pushable)
                if self._plan_cache is not None:
                    # The estimate this plan is being executed under;
                    # later lookups compare it against the calibrated
                    # truth and recalibrate on divergence.
                    self._plan_cache.record_estimate(
                        query,
                        self._catalog,
                        acted_estimate,
                        max_disjuncts=max_disjuncts,
                    )
                if (
                    self._selectivity_gate is not None
                    and acted_estimate > self._selectivity_gate
                ):
                    # The envelope is too unselective to buy an index plan;
                    # strip it (paper Section 4.2: "the upper envelope can
                    # be removed at the end of the optimization").  It
                    # still holds as a predicate-level superset, so the
                    # residual filter reuses it as a columnar prefilter
                    # ahead of model scoring.  The first len(residual)
                    # injections align positionally with the residual
                    # predicates.
                    obs.event(
                        "execute.envelope_stripped",
                        table=query.table,
                        estimated=acted_estimate,
                        gate=self._selectivity_gate,
                    )
                    pushable = optimized.query.relational_predicate
                    envelopes = [
                        injection.envelope
                        for injection in optimized.injections[
                            : len(optimized.residual_predicates)
                        ]
                    ]
                    acted_estimate = estimator(pushable)
            select = capture_select_plan(self._db, query.table, pushable)
            sql, plan = select.sql, select.plan
            with obs.span("execute.sql", table=query.table) as sql_span:
                started = time.perf_counter()
                fetched = self._db.query_rows(sql)
                sql_seconds = time.perf_counter() - started
                sql_span.set("rows_fetched", len(fetched))
            actual: float | None = None
            if (
                estimator is not None
                and stats is not None
                and stats.row_count > 0
            ):
                # Estimator-accuracy feedback: the estimate the optimizer
                # acted on versus the measured selectivity of the same
                # (final) pushed predicate — recorded for the trace, and
                # fed back into the calibration store so the next
                # execution estimates from observation.
                actual = len(fetched) / stats.row_count
                if obs.enabled():
                    record_estimator_accuracy(
                        query.table,
                        pushable,
                        acted_estimate,
                        actual,
                        stats.row_count,
                        static_estimated=estimator.static(pushable),
                    )
                if self._calibration is not None:
                    self._calibration.observe(
                        query.table,
                        pushable,
                        acted_estimate,
                        actual,
                        stats.version,
                    )

            with obs.span("execute.model", table=query.table) as model_span:
                started = time.perf_counter()
                rows, predictions = self._apply_mining_predicates(
                    fetched,
                    optimized.residual_predicates,
                    envelopes=envelopes,
                    estimator=estimator,
                )
                model_seconds = time.perf_counter() - started
                model_span.update(rows_in=len(fetched), rows_out=len(rows))
            execute_span.update(
                rows_fetched=len(fetched),
                rows_returned=len(rows),
                sql_seconds=sql_seconds,
                model_seconds=model_seconds,
            )
            return ExecutionReport(
                strategy="optimized",
                rows=rows,
                rows_fetched=len(fetched),
                sql_seconds=sql_seconds,
                model_seconds=model_seconds,
                plan=plan,
                optimized=optimized,
                predictions=predictions,
                estimated_selectivity=acted_estimate,
                actual_selectivity=actual,
            )

    def execute(
        self, query: MiningQuery, optimize_query: bool = True
    ) -> ExecutionReport:
        """Dispatch on strategy; the default is the optimized path."""
        if optimize_query:
            return self.execute_optimized(query)
        return self.execute_naive(query)

    def predictions(
        self, query: MiningQuery, optimize_query: bool = True
    ) -> list[dict[str, Value]]:
        """Result rows augmented with each model's prediction column.

        This mirrors the shape of the paper's DMX example output
        (``SELECT D.Customer_ID, M.Risk ...``): every referenced model
        contributes its prediction column to the returned rows.

        The residual filter already scored (and memoized) every surviving
        row, so the labels come straight from the execution report; a
        model is re-scored only if its memo is unavailable (exotic
        predicates that bypass the prediction cache).
        """
        report = self.execute(query, optimize_query=optimize_query)
        model_names: list[str] = []
        for predicate in query.mining_predicates:
            for name in predicate.models():
                if name not in model_names:
                    model_names.append(name)
        augmented = [dict(row) for row in report.rows]
        memoized = report.predictions or {}
        for name in model_names:
            model = self._catalog.model(name)
            labels: Sequence[Value] | None = memoized.get(name)
            if labels is None or len(labels) != len(report.rows):
                labels = model.predict_many(report.rows)
            for enriched, label in zip(augmented, labels):
                enriched[model.prediction_column] = label
        return augmented


def _collect_row_predictions(
    caches: Sequence[Mapping[str, Value]],
) -> dict[str, tuple[Value, ...]]:
    """Stitch per-row prediction memos into per-model label columns.

    Only models memoized for *every* surviving row are kept — a predicate
    that bypasses the cache would otherwise leave misaligned columns.
    """
    if not caches:
        return {}
    names = set(caches[0])
    for cache in caches[1:]:
        names &= cache.keys()
    return {
        name: tuple(cache[name] for cache in caches)
        for name in sorted(names)
    }


def _compact(
    batch: ColumnBatch,
    cache: dict[str, np.ndarray],
    alive: np.ndarray | None,
    mask: np.ndarray,
) -> tuple[ColumnBatch, dict[str, np.ndarray], np.ndarray | None]:
    """Narrow a batch to the rows where ``mask`` holds.

    Cached prediction arrays are sliced with the same index set so they
    stay aligned with the surviving rows; ``alive`` tracks positions in
    the original chunk (``None`` means every row is still alive).
    """
    if mask.all():
        return batch, cache, alive
    keep = np.flatnonzero(mask)
    alive = keep if alive is None else alive[keep]
    batch = batch.take(keep)
    cache = {name: values[keep] for name, values in cache.items()}
    return batch, cache, alive


def baseline_full_scan(db: Database, table: str) -> ExecutionReport:
    """The paper's comparison query: ``SELECT * FROM T`` timed end-to-end."""
    count, seconds = db.timed_fetch(select_statement(table, TRUE))
    return ExecutionReport(
        strategy="full-scan",
        rows=(),
        rows_fetched=count,
        sql_seconds=seconds,
        model_seconds=0.0,
        plan=FULL_SCAN_PLAN,
    )
