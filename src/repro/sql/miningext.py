"""Mining-query execution over the relational store (PREDICTION JOIN).

This is the user-facing integration layer mirroring the systems of paper
Section 2: a :class:`PredictionJoinExecutor` applies registered mining
models to a table's rows, filtered by mining predicates, with two execution
strategies:

* **extract-and-mine** (Section 2.1) — evaluate only the relational
  predicate in SQL, fetch everything that survives, apply the model to each
  fetched row, and filter on the predicted label;
* **optimized** (Section 4) — inject upper envelopes into the WHERE clause
  so the engine can use indexed access paths (or a constant scan when an
  envelope is FALSE), then apply the model only to the rows the envelope
  admits.

Both strategies return the same rows (verified by the integration tests);
they differ in how many rows cross the SQL boundary and in the physical
plan, which is exactly the effect the paper measures.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.catalog import ModelCatalog
from repro.core.columns import ColumnBatch
from repro.core.optimizer import (
    DEFAULT_MAX_DISJUNCTS,
    MiningQuery,
    OptimizedQuery,
    optimize,
)
from repro.core.predicates import (
    TRUE,
    Predicate,
    SelectivityEstimator,
    TruePredicate,
    Value,
)
from repro.core.rewrite import MiningPredicate
from repro.exceptions import ModelError
from repro.sql.compiler import select_statement
from repro.sql.database import Database, Row
from repro.sql.planner import (
    FULL_SCAN_PLAN,
    Plan,
    capture_plan,
)
from repro.sql.plancache import PlanCache
from repro.sql.stats import TableStats, build_table_stats, estimate_selectivity


@dataclass(frozen=True)
class ExecutionReport:
    """Everything observed while executing one mining query.

    ``rows_fetched`` counts rows crossing the SQL boundary; ``rows`` is the
    final result after residual model application.  ``sql_seconds`` and
    ``model_seconds`` split the cost the way the paper's discussion does
    (its timings exclude model invocation; ours reports both).
    """

    strategy: str
    rows: tuple[Row, ...]
    rows_fetched: int
    sql_seconds: float
    model_seconds: float
    plan: Plan
    optimized: OptimizedQuery | None = None

    @property
    def total_seconds(self) -> float:
        return self.sql_seconds + self.model_seconds

    @property
    def rows_returned(self) -> int:
        return len(self.rows)


class PredictionJoinExecutor:
    """Executes :class:`MiningQuery` objects against one database.

    ``selectivity_gate`` implements the paper's Section 4.2 mitigation
    ("simplification based on selectivity estimates"): an injected envelope
    whose estimated selectivity exceeds the gate is stripped before
    execution, because indexed access paths only pay off for selective
    predicates (the paper observes the optimizer "rarely selects indexes"
    above roughly 10% selectivity).  Set it to ``None`` to always push the
    envelope regardless of selectivity.

    ``vectorized`` selects the residual-filter implementation: the default
    scores fetched rows in columnar batches of ``batch_size`` rows through
    each model's ``predict_batch``; ``False`` falls back to the scalar
    row-at-a-time path.  Both paths memoize predictions per (model, row),
    and both return identical rows — the knob trades nothing but speed.
    """

    def __init__(
        self,
        db: Database,
        catalog: ModelCatalog,
        selectivity_gate: float | None = 0.2,
        stats_sample: int = 10_000,
        plan_cache: "PlanCache | None" = None,
        vectorized: bool = True,
        batch_size: int = 2048,
    ) -> None:
        if batch_size < 1:
            raise ModelError(f"batch_size must be >= 1, got {batch_size}")
        self._db = db
        self._catalog = catalog
        self._selectivity_gate = selectivity_gate
        self._stats_sample = stats_sample
        self._stats_cache: dict[str, TableStats] = {}
        self._plan_cache = plan_cache
        self._vectorized = vectorized
        self._batch_size = batch_size

    @property
    def vectorized(self) -> bool:
        """Whether the residual filter runs in columnar batches."""
        return self._vectorized

    @property
    def batch_size(self) -> int:
        """Rows per columnar batch on the vectorized path."""
        return self._batch_size

    def _table_stats(self, table: str) -> TableStats:
        if table not in self._stats_cache:
            sample = self._db.sample_rows(table, self._stats_sample)
            self._stats_cache[table] = build_table_stats(
                table, sample, row_count=self._db.row_count(table)
            )
        return self._stats_cache[table]

    # -- residual model application ---------------------------------------

    def _apply_mining_predicates(
        self,
        fetched: Sequence[Row],
        predicates: Sequence[MiningPredicate],
        envelopes: Sequence[Predicate] | None = None,
        estimator: SelectivityEstimator | None = None,
    ) -> tuple[Row, ...]:
        """Rows of ``fetched`` satisfying every mining predicate.

        ``envelopes``, when given, holds each predicate's upper envelope
        (positionally aligned).  An envelope is a superset of its
        predicate, so rows failing it cannot pass the predicate — it is
        applied first as a cheap columnar prefilter before the model runs.
        The executor only passes envelopes that were *not* pushed into
        SQL; a pushed envelope has already filtered the fetch.

        Both the vectorized and scalar paths memoize predictions per
        (model, row), so several predicates over one model score each row
        once.
        """
        if not predicates:
            return tuple(fetched)
        if not self._vectorized:
            selected = []
            for row in fetched:
                cache: dict[str, Value] = {}
                if all(
                    predicate.evaluate_cached(row, self._catalog, cache)
                    for predicate in predicates
                ):
                    selected.append(row)
            return tuple(selected)
        survivors: list[Row] = []
        step = self._batch_size
        for start in range(0, len(fetched), step):
            survivors.extend(
                self._filter_batch(
                    fetched[start : start + step],
                    predicates,
                    envelopes,
                    estimator,
                )
            )
        return tuple(survivors)

    def _filter_batch(
        self,
        chunk: Sequence[Row],
        predicates: Sequence[MiningPredicate],
        envelopes: Sequence[Predicate] | None,
        estimator: SelectivityEstimator | None,
    ) -> list[Row]:
        """Vectorized filter of one batch with short-circuit compaction.

        After each predicate, rows already ruled out are compacted away
        (``ColumnBatch.take``), and the per-model prediction memo is
        sliced in lockstep so cached predictions stay row-aligned.
        """
        batch = ColumnBatch(chunk)
        cache: dict[str, np.ndarray] = {}
        alive: np.ndarray | None = None  # chunk indices still in play
        for index, predicate in enumerate(predicates):
            envelope = (
                envelopes[index] if envelopes is not None else None
            )
            if envelope is not None and not isinstance(
                envelope, TruePredicate
            ):
                mask = envelope.evaluate_batch(batch, estimator)
                batch, cache, alive = _compact(batch, cache, alive, mask)
                if len(batch) == 0:
                    return []
            mask = predicate.evaluate_batch(batch, self._catalog, cache)
            batch, cache, alive = _compact(batch, cache, alive, mask)
            if len(batch) == 0:
                return []
        if alive is None:
            return list(chunk)
        return [chunk[i] for i in alive]

    def execute_naive(self, query: MiningQuery) -> ExecutionReport:
        """Extract-and-mine: SQL evaluates only the relational predicate."""
        sql = select_statement(query.table, query.relational_predicate)
        plan = capture_plan(
            self._db, query.table, query.relational_predicate
        )
        started = time.perf_counter()
        fetched = self._db.query_rows(sql)
        sql_seconds = time.perf_counter() - started

        started = time.perf_counter()
        rows = self._apply_mining_predicates(
            fetched, query.mining_predicates
        )
        model_seconds = time.perf_counter() - started
        return ExecutionReport(
            strategy="extract-and-mine",
            rows=rows,
            rows_fetched=len(fetched),
            sql_seconds=sql_seconds,
            model_seconds=model_seconds,
            plan=plan,
        )

    def execute_optimized(
        self,
        query: MiningQuery,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    ) -> ExecutionReport:
        """Envelope-injected execution (paper Section 4).

        The residual model application keeps semantics exact even for loose
        envelopes; a FALSE pushable predicate returns immediately with a
        constant-scan plan and zero data access.
        """
        if self._plan_cache is not None:
            optimized = self._plan_cache.get_or_optimize(
                query, self._catalog, max_disjuncts=max_disjuncts
            )
        else:
            optimized = optimize(
                query, self._catalog, max_disjuncts=max_disjuncts
            )
        if optimized.constant_false:
            return ExecutionReport(
                strategy="optimized",
                rows=(),
                rows_fetched=0,
                sql_seconds=0.0,
                model_seconds=0.0,
                plan=capture_plan(
                    self._db, query.table, optimized.pushable_predicate
                ),
                optimized=optimized,
            )
        pushable = optimized.pushable_predicate
        envelopes: list[Predicate] | None = None
        estimator: SelectivityEstimator | None = None
        if self._selectivity_gate is not None:
            stats = self._table_stats(query.table)
            estimated = estimate_selectivity(stats, pushable)
            if estimated > self._selectivity_gate:
                # The envelope is too unselective to buy an index plan;
                # strip it (paper Section 4.2: "the upper envelope can be
                # removed at the end of the optimization").  It still
                # holds as a predicate-level superset, so the residual
                # filter reuses it as a columnar prefilter ahead of model
                # scoring.  The first len(residual) injections align
                # positionally with the residual predicates.
                pushable = optimized.query.relational_predicate
                envelopes = [
                    injection.envelope
                    for injection in optimized.injections[
                        : len(optimized.residual_predicates)
                    ]
                ]
                estimator = lambda predicate: estimate_selectivity(
                    stats, predicate
                )
        sql = select_statement(query.table, pushable)
        plan = capture_plan(self._db, query.table, pushable)
        started = time.perf_counter()
        fetched = self._db.query_rows(sql)
        sql_seconds = time.perf_counter() - started

        started = time.perf_counter()
        rows = self._apply_mining_predicates(
            fetched,
            optimized.residual_predicates,
            envelopes=envelopes,
            estimator=estimator,
        )
        model_seconds = time.perf_counter() - started
        return ExecutionReport(
            strategy="optimized",
            rows=rows,
            rows_fetched=len(fetched),
            sql_seconds=sql_seconds,
            model_seconds=model_seconds,
            plan=plan,
            optimized=optimized,
        )

    def execute(
        self, query: MiningQuery, optimize_query: bool = True
    ) -> ExecutionReport:
        """Dispatch on strategy; the default is the optimized path."""
        if optimize_query:
            return self.execute_optimized(query)
        return self.execute_naive(query)

    def predictions(
        self, query: MiningQuery, optimize_query: bool = True
    ) -> list[dict[str, Value]]:
        """Result rows augmented with each model's prediction column.

        This mirrors the shape of the paper's DMX example output
        (``SELECT D.Customer_ID, M.Risk ...``): every referenced model
        contributes its prediction column to the returned rows.
        """
        report = self.execute(query, optimize_query=optimize_query)
        model_names: list[str] = []
        for predicate in query.mining_predicates:
            for name in predicate.models():
                if name not in model_names:
                    model_names.append(name)
        augmented = [dict(row) for row in report.rows]
        for name in model_names:
            model = self._catalog.model(name)
            labels = model.predict_many(report.rows)
            for enriched, label in zip(augmented, labels):
                enriched[model.prediction_column] = label
        return augmented


def _compact(
    batch: ColumnBatch,
    cache: dict[str, np.ndarray],
    alive: np.ndarray | None,
    mask: np.ndarray,
) -> tuple[ColumnBatch, dict[str, np.ndarray], np.ndarray | None]:
    """Narrow a batch to the rows where ``mask`` holds.

    Cached prediction arrays are sliced with the same index set so they
    stay aligned with the surviving rows; ``alive`` tracks positions in
    the original chunk (``None`` means every row is still alive).
    """
    if mask.all():
        return batch, cache, alive
    keep = np.flatnonzero(mask)
    alive = keep if alive is None else alive[keep]
    batch = batch.take(keep)
    cache = {name: values[keep] for name, values in cache.items()}
    return batch, cache, alive


def baseline_full_scan(db: Database, table: str) -> ExecutionReport:
    """The paper's comparison query: ``SELECT * FROM T`` timed end-to-end."""
    count, seconds = db.timed_fetch(select_statement(table, TRUE))
    return ExecutionReport(
        strategy="full-scan",
        rows=(),
        rows_fetched=count,
        sql_seconds=seconds,
        model_seconds=0.0,
        plan=FULL_SCAN_PLAN,
    )
