"""Plan caching with model-version invalidation (paper Section 4.2).

"Such information is different from the traditional statistical information
about tables because the correctness of our optimization is impacted if the
mining model is changed.  In such cases, we need to invalidate an execution
plan (if cached or persisted) in case it had exploited upper envelopes."

:class:`PlanCache` stores optimized queries keyed by a structural
fingerprint of the mining query *plus the versions of every referenced
model* (from the catalog).  Re-registering a model bumps its version, so a
cached plan built against stale envelopes can never be replayed —
correctness, not just staleness, is at stake, exactly as the paper notes.

The relational predicate enters the key through
:func:`repro.ir.fingerprint` — a digest of predicate *structure*, under
which commutative-equivalent predicates (``And(a, b)`` vs ``And(b, a)``)
share one entry.  The previous ``repr``-text key missed on such logically
identical queries and re-optimized them from scratch.

Beyond model versions, entries carry the selectivity estimate the plan
was executed under (:meth:`PlanCache.record_estimate`).  When a lookup
supplies a calibrated estimator (:mod:`repro.sql.calibration`), a hit
whose recorded estimate has drifted from the calibrated truth beyond the
recalibration threshold is dropped and re-optimized — the feedback-loop
analogue of the paper's version-based invalidation, for plans whose
*selectivity* assumptions (not their envelopes) went stale.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro import obs
from repro.core.catalog import ModelCatalog
from repro.core.optimizer import MiningQuery, OptimizedQuery, optimize
from repro.core.predicates import SelectivityEstimator
from repro.ir import fingerprint as ir_fingerprint


@dataclass
class PlanCacheStats:
    """Hit/miss/invalidation/eviction/recalibration counters."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    #: Cached plans dropped because their recorded selectivity estimate
    #: diverged from the calibrated truth beyond the threshold.
    recalibrations: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get_or_optimize`` calls (every lookup hits or misses)."""
        return self.hits + self.misses


class PlanCache:
    """A bounded LRU cache of optimized mining queries.

    All operations are thread-safe: the serving layer shares one cache
    across every worker thread.  A cache miss releases the lock while the
    optimizer runs (optimization is the expensive part and needs no shared
    state), so concurrent misses on *different* queries optimize in
    parallel; concurrent misses on the *same* query may both optimize, and
    the second insert wins — wasted work, never a wrong plan.  The
    hit/miss/invalidation/eviction counters are updated under the lock, so
    ``hits + misses`` always equals the number of lookups.
    """

    def __init__(
        self,
        capacity: int = 128,
        recalibration_threshold: float = 0.05,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if recalibration_threshold <= 0:
            raise ValueError(
                "recalibration_threshold must be > 0, got "
                f"{recalibration_threshold}"
            )
        self._capacity = capacity
        self._recalibration_threshold = recalibration_threshold
        #: key -> (model versions, plan, estimate the plan was kept
        #: under — ``None`` until the executor records one).
        self._entries: OrderedDict[
            tuple,
            tuple[
                tuple[tuple[str, int], ...], OptimizedQuery, float | None
            ],
        ] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = PlanCacheStats()

    @staticmethod
    def _canonical_kwargs(optimize_kwargs: dict) -> tuple:
        """Order-independent, hashable form of the optimizer settings.

        The settings are part of the plan's identity: a query optimized
        with one disjunct threshold must not be replayed for a call with
        different settings.
        """

        def freeze(value: object) -> object:
            if isinstance(value, dict):
                # Sort by repr like the set branch: mixed-type keys
                # (e.g. ``{1: ..., "a": ...}``) are unorderable and a
                # plain sorted() turned a cache lookup into a TypeError.
                return tuple(
                    sorted(
                        ((k, freeze(v)) for k, v in value.items()),
                        key=lambda item: (repr(item[0]), repr(item[1])),
                    )
                )
            if isinstance(value, (list, tuple)):
                return tuple(freeze(v) for v in value)
            if isinstance(value, (set, frozenset)):
                return tuple(sorted((freeze(v) for v in value), key=repr))
            try:
                hash(value)
            except TypeError:
                return repr(value)
            return value

        return tuple(
            sorted((name, freeze(value)) for name, value in optimize_kwargs.items())
        )

    @staticmethod
    def _fingerprint(query: MiningQuery, optimize_kwargs: dict) -> tuple:
        return (
            query.table,
            ir_fingerprint(query.relational_predicate),
            tuple(
                predicate.describe() for predicate in query.mining_predicates
            ),
            PlanCache._canonical_kwargs(optimize_kwargs),
        )

    @staticmethod
    def _model_versions(
        query: MiningQuery, catalog: ModelCatalog
    ) -> tuple[tuple[str, int], ...]:
        names: list[str] = []
        for predicate in query.mining_predicates:
            for name in predicate.models():
                if name not in names:
                    names.append(name)
        return tuple(
            (name, catalog.entry(name).version) for name in names
        )

    def get_or_optimize(
        self,
        query: MiningQuery,
        catalog: ModelCatalog,
        calibrated: "SelectivityEstimator | None" = None,
        **optimize_kwargs,
    ) -> OptimizedQuery:
        """Return a cached plan if every referenced model is unchanged.

        A version mismatch counts as an *invalidation* (the stale entry is
        evicted) and the query is re-optimized against the current
        envelopes.  The ``optimize_kwargs`` are folded into the cache key,
        so the same query under different optimizer settings is a *miss*
        (re-optimized), never a silent replay of a plan built with other
        settings.

        ``calibrated``, when given, enables divergence-triggered
        invalidation: a hit whose recorded estimate (see
        :meth:`record_estimate`) diverges from
        ``calibrated(plan.pushable_predicate)`` by more than the
        recalibration threshold is dropped and re-optimized — the plan
        was kept under selectivity assumptions the measured traffic has
        since contradicted.  Counted as ``plan_cache.recalibration``.
        """
        key = self._fingerprint(query, optimize_kwargs)
        versions = self._model_versions(query, catalog)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                cached_versions, plan, estimate = cached
                if cached_versions != versions:
                    del self._entries[key]
                    self.stats.invalidations += 1
                    obs.add_counter("plan_cache.invalidation")
                elif self._diverged(plan, estimate, calibrated):
                    del self._entries[key]
                    self.stats.recalibrations += 1
                    obs.add_counter("plan_cache.recalibration")
                else:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    obs.add_counter("plan_cache.hit")
                    return plan
            self.stats.misses += 1
            obs.add_counter("plan_cache.miss")
        # Optimize outside the lock: misses on different queries must not
        # serialize behind each other in the serving path.
        plan = optimize(query, catalog, **optimize_kwargs)
        with self._lock:
            self._entries[key] = (versions, plan, None)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                obs.add_counter("plan_cache.evict")
        return plan

    def _diverged(
        self,
        plan: OptimizedQuery,
        estimate: float | None,
        calibrated: "SelectivityEstimator | None",
    ) -> bool:
        """Whether a cached plan's recorded estimate is no longer credible."""
        if calibrated is None or estimate is None:
            return False
        try:
            current = calibrated(plan.pushable_predicate)
        except Exception:
            # A calibration overlay must never turn a cache hit into a
            # crash; an unestimable predicate simply keeps the plan.
            return False
        return abs(float(current) - estimate) > self._recalibration_threshold

    def record_estimate(
        self,
        query: MiningQuery,
        catalog: ModelCatalog,
        estimate: float,
        **optimize_kwargs,
    ) -> None:
        """Attach the selectivity estimate a cached plan was executed under.

        The executor calls this after computing the pushable predicate's
        estimated selectivity; the recorded value is what later lookups
        compare the calibrated truth against.  A no-op when the entry
        has since been evicted or replaced by a different-version plan.
        """
        key = self._fingerprint(query, optimize_kwargs)
        versions = self._model_versions(query, catalog)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None and cached[0] == versions:
                self._entries[key] = (cached[0], cached[1], float(estimate))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
