"""Physical-plan capture and comparison.

The paper's plan-change experiment (Section 5.2.1) records, per query,
whether adding the upper envelope changed the optimizer's physical plan,
where *changed* means (a) one or more indexes were chosen, or (b) a
"Constant Scan" answered the query without touching data (the envelope was
FALSE).  This module reproduces that bookkeeping on SQLite: plans are parsed
from ``EXPLAIN QUERY PLAN`` and classified as full scans, index searches
(including multi-index OR), or constant scans.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro import obs
from repro.core.predicates import FalsePredicate, Or, Predicate
from repro.sql.compiler import (
    DEFAULT_MAX_UNION_BRANCHES,
    select_statement,
    union_eligible,
    union_select_statement,
)
from repro.sql.database import Database

_SEARCH_INDEX = re.compile(r"USING (?:COVERING )?INDEX (\S+)")


class AccessPath(enum.Enum):
    """Classification of how a query touches the table."""

    FULL_SCAN = "full-scan"
    INDEX_SEARCH = "index-search"
    CONSTANT_SCAN = "constant-scan"


@dataclass(frozen=True)
class Plan:
    """A captured physical plan for one query."""

    access_path: AccessPath
    index_names: tuple[str, ...]
    detail: tuple[str, ...]

    @property
    def uses_index(self) -> bool:
        return self.access_path is AccessPath.INDEX_SEARCH

    @property
    def is_constant(self) -> bool:
        return self.access_path is AccessPath.CONSTANT_SCAN

    def changed_from(self, baseline: "Plan") -> bool:
        """The paper's plan-change criterion against a baseline plan."""
        if self.is_constant:
            return True
        if self.uses_index and not baseline.uses_index:
            return True
        return False


#: The plan of the ``SELECT * FROM T`` baseline: always a full scan.
FULL_SCAN_PLAN = Plan(AccessPath.FULL_SCAN, (), ("SCAN (baseline)",))

#: The plan when the predicate is provably FALSE: no data access at all.
CONSTANT_SCAN_PLAN = Plan(
    AccessPath.CONSTANT_SCAN, (), ("CONSTANT SCAN (predicate is FALSE)",)
)


def capture_plan(db: Database, table: str, predicate: Predicate) -> Plan:
    """Plan of ``SELECT * FROM table WHERE predicate``.

    A FALSE predicate is resolved to a constant scan *before* reaching the
    engine — the optimizer knows the envelope is empty from the catalog and
    never needs the data (paper Section 5.2.1 case (b)).
    """
    with obs.span("plan.capture", table=table) as sp:
        if isinstance(predicate, FalsePredicate):
            plan = CONSTANT_SCAN_PLAN
        else:
            sql = select_statement(table, predicate)
            plan = parse_explain(db.explain(sql))
        if obs.enabled():
            sp.update(
                access_path=plan.access_path.value,
                indexes=list(plan.index_names),
            )
        return plan


def parse_explain(rows: list[tuple[int, int, int, str]]) -> Plan:
    """Classify raw ``EXPLAIN QUERY PLAN`` output."""
    details = tuple(text for *_ids, text in rows)
    indexes: list[str] = []
    saw_scan = False
    for text in details:
        match = _SEARCH_INDEX.search(text)
        if match:
            indexes.append(match.group(1))
        elif text.startswith("SCAN"):
            saw_scan = True
    if indexes and not saw_scan:
        return Plan(AccessPath.INDEX_SEARCH, tuple(sorted(set(indexes))), details)
    return Plan(AccessPath.FULL_SCAN, tuple(sorted(set(indexes))), details)


@dataclass(frozen=True)
class SelectPlan:
    """A SELECT statement together with the plan that chose its shape."""

    sql: str
    plan: Plan
    used_union: bool
    branches: int

    @property
    def uses_index(self) -> bool:
        return self.plan.uses_index


def capture_select_plan(
    db: Database,
    table: str,
    predicate: Predicate,
    columns: str = "*",
    max_branches: int = DEFAULT_MAX_UNION_BRANCHES,
) -> SelectPlan:
    """Plan-aware SELECT lowering with a UNION-of-index-range fallback.

    Captures the flat ``WHERE`` plan first.  When the flat form of an
    eligible OR-of-conjunctions full-scans (SQLite's multi-index OR is
    all-or-nothing and cost-gated), the disjoint ``UNION ALL`` lowering
    is tried; it is adopted only if its captured plan seeks an index on
    *every* branch — a union that still scans some branch would repeat
    full table passes and is strictly worse than one flat scan.  Counter
    ``sql.lowering.union`` counts adoptions.
    """
    with obs.span("plan.capture_select", table=table) as sp:
        flat = capture_plan(db, table, predicate)
        chosen = SelectPlan(
            sql=select_statement(table, predicate, columns),
            plan=flat,
            used_union=False,
            branches=1,
        )
        if flat.access_path is AccessPath.FULL_SCAN and union_eligible(
            predicate, max_branches
        ):
            assert isinstance(predicate, Or)
            union_sql = union_select_statement(table, predicate, columns)
            union_plan = parse_explain(db.explain(union_sql))
            if union_plan.access_path is AccessPath.INDEX_SEARCH:
                obs.add_counter("sql.lowering.union", 1)
                chosen = SelectPlan(
                    sql=union_sql,
                    plan=union_plan,
                    used_union=True,
                    branches=len(predicate.operands),
                )
        if obs.enabled():
            sp.update(
                access_path=chosen.plan.access_path.value,
                used_union=chosen.used_union,
                branches=chosen.branches,
            )
        return chosen


@dataclass(frozen=True)
class PlanComparison:
    """Side-by-side of the baseline plan and the envelope plan."""

    baseline: Plan
    with_envelope: Plan

    @property
    def changed(self) -> bool:
        return self.with_envelope.changed_from(self.baseline)


def compare_plans(
    db: Database,
    table: str,
    baseline_predicate: Predicate,
    envelope_predicate: Predicate,
) -> PlanComparison:
    """Capture and compare plans with and without the upper envelope."""
    return PlanComparison(
        baseline=capture_plan(db, table, baseline_predicate),
        with_envelope=capture_plan(db, table, envelope_predicate),
    )
