"""Relational schema descriptions for the SQLite substrate."""

from __future__ import annotations

import enum
import re
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.predicates import Value
from repro.exceptions import SchemaError

_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def check_identifier(name: str) -> str:
    """Validate a SQL identifier (defense against malformed names)."""
    if not _IDENTIFIER.match(name):
        raise SchemaError(f"invalid SQL identifier {name!r}")
    return name


class ColumnType(enum.Enum):
    """SQLite storage classes we use."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"

    @classmethod
    def for_value(cls, value: Value) -> "ColumnType":
        if isinstance(value, bool):
            raise SchemaError("boolean values are stored as INTEGER 0/1")
        if isinstance(value, int):
            return cls.INTEGER
        if isinstance(value, float):
            return cls.REAL
        if isinstance(value, str):
            return cls.TEXT
        raise SchemaError(f"unsupported value type {type(value).__name__}")


@dataclass(frozen=True)
class Column:
    """One column: name and SQLite type."""

    name: str
    type: ColumnType

    def __post_init__(self) -> None:
        check_identifier(self.name)

    def ddl(self) -> str:
        return f'"{self.name}" {self.type.value}'


@dataclass(frozen=True)
class TableSchema:
    """A table definition (no constraints; analytics tables)."""

    name: str
    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        check_identifier(self.name)
        if not self.columns:
            raise SchemaError(f"table {self.name!r} needs at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.name!r} has duplicate columns")

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def create_statement(self) -> str:
        body = ", ".join(c.ddl() for c in self.columns)
        return f'CREATE TABLE "{self.name}" ({body})'

    @classmethod
    def from_rows(
        cls, name: str, rows: Sequence[Mapping[str, Value]]
    ) -> "TableSchema":
        """Infer a schema from sample rows (first row fixes the columns)."""
        if not rows:
            raise SchemaError("cannot infer a schema from zero rows")
        first = rows[0]
        columns = tuple(
            Column(column, ColumnType.for_value(value))
            for column, value in first.items()
        )
        return cls(name, columns)
