"""Column statistics and selectivity estimation.

The index advisor (our Index Tuning Wizard stand-in) needs estimated
selectivities of candidate predicates, just as the paper's optimizer relies
on "selectivity computations ... for complex boolean expressions"
(Section 4.2).  Statistics are built from a deterministic sample: per-column
distinct counts, most-common values, and an equi-depth histogram for range
estimates.  Composite predicates combine atoms under the classical
independence assumption.
"""

from __future__ import annotations

import bisect
import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro import obs
from repro.core.predicates import (
    And,
    Comparison,
    FalsePredicate,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    Predicate,
    TruePredicate,
    Value,
)
from repro.exceptions import DatabaseError

#: Histogram resolution (equi-depth bucket count).
_BUCKETS = 32
#: How many most-common values to track exactly.
_TOP_VALUES = 24
#: Fallback selectivity when a predicate cannot use column statistics
#: (non-numeric histogram, mixed-type bounds).
_GENERIC_SELECTIVITY = 0.3


def _is_numeric(value: object) -> bool:
    """True for int/float values, excluding bool (a subclass of int)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _value_key(value: Value) -> tuple[bool, Value]:
    """Dict key distinguishing bool from numeric the way ``_is_numeric`` does.

    Python dicts treat ``True == 1 == 1.0`` as one key, so a plain
    ``top_values[value]`` lookup on a bool column answered
    ``equality_selectivity(1)`` with ``True``'s frequency (and vice
    versa), and a sample containing both merged their counts.  Tagging
    the key with ``isinstance(value, bool)`` keeps the two apart while
    preserving the intended ``1 == 1.0`` numeric merging.
    """
    return (isinstance(value, bool), value)


@dataclass(frozen=True)
class ColumnStats:
    """Summary of one column built from a sample."""

    name: str
    sample_size: int
    distinct: int
    #: Most-common-value frequencies keyed by :func:`_value_key` (the
    #: bool tag keeps ``True`` and ``1`` as distinct values).
    top_values: dict[tuple[bool, Value], float]
    #: Sorted numeric sample quantile boundaries (numeric columns only).
    boundaries: tuple[float, ...] | None

    def equality_selectivity(self, value: Value) -> float:
        key = _value_key(value)
        if key in self.top_values:
            return self.top_values[key]
        if self.distinct == 0:
            return 0.0
        # A value absent from the sample can only claim the probability
        # mass the tracked common values do *not* account for, spread over
        # the distinct values beyond them.  When the sample enumerates the
        # column fully, that leftover mass is ~0 — the old 1/distinct
        # answer grossly overestimated and misordered operands sorted by
        # selectivity.
        leftover = max(0.0, 1.0 - sum(self.top_values.values()))
        unseen = max(self.distinct - len(self.top_values), 1)
        return min(leftover / unseen, 1.0)

    def range_selectivity(
        self,
        low: Value | None,
        high: Value | None,
        low_closed: bool,
        high_closed: bool,
    ) -> float:
        if self.boundaries is None or not self.boundaries:
            # Non-numeric column: fall back to a generic guess.
            return _GENERIC_SELECTIVITY
        if (low is not None and not _is_numeric(low)) or (
            high is not None and not _is_numeric(high)
        ):
            # A non-numeric bound on a numeric column cannot be located in
            # the histogram.  Treating it as unbounded silently returned
            # the open side's selectivity; the honest answer is the same
            # generic guess used when no histogram applies.
            return _GENERIC_SELECTIVITY
        points = self.boundaries
        n = len(points)
        lo_index = 0
        if low is not None:
            if low_closed:
                lo_index = bisect.bisect_left(points, float(low))
            else:
                lo_index = bisect.bisect_right(points, float(low))
        hi_index = n
        if high is not None:
            if high_closed:
                hi_index = bisect.bisect_right(points, float(high))
            else:
                hi_index = bisect.bisect_left(points, float(high))
        if hi_index <= lo_index:
            return 0.0
        return (hi_index - lo_index) / n


@dataclass(frozen=True)
class TableStats:
    """Per-column statistics of one table.

    ``version`` names this statistics snapshot process-wide (a monotonic
    counter stamped by :func:`build_table_stats`): estimators derived
    from the snapshot expose it as ``stats_version`` so downstream
    memoization — the batch lowering's plan-once operand ordering —
    can key cached decisions on *which statistics* produced them and
    invalidate when the stats are rebuilt.
    """

    table: str
    row_count: int
    columns: dict[str, ColumnStats]
    version: int = 0

    def column(self, name: str) -> ColumnStats:
        try:
            return self.columns[name]
        except KeyError:
            raise DatabaseError(
                f"no statistics for column {name!r} of {self.table!r}"
            ) from None


def build_column_stats(name: str, values: Sequence[Value]) -> ColumnStats:
    """Build stats for one column from sampled values."""
    if not values:
        raise DatabaseError(f"no sample values for column {name!r}")
    counts: dict[tuple[bool, Value], int] = {}
    for value in values:
        key = _value_key(value)
        counts[key] = counts.get(key, 0) + 1
    total = len(values)
    common = sorted(
        counts.items(), key=lambda kv: (-kv[1], str(kv[0][1]), kv[0][0])
    )
    top_values = {
        key: count / total for key, count in common[:_TOP_VALUES]
    }
    # Booleans are ints to isinstance() but not to a histogram: a column
    # of True/False must not masquerade as numeric boundaries.
    numeric = [v for v in values if _is_numeric(v)]
    boundaries: tuple[float, ...] | None = None
    if len(numeric) == total:
        ordered = sorted(float(v) for v in numeric)
        if len(ordered) > _BUCKETS:
            step = len(ordered) / _BUCKETS
            picked = [
                ordered[min(int(i * step), len(ordered) - 1)]
                for i in range(_BUCKETS)
            ]
            # Equi-depth picks land strictly below the sample maximum, so
            # without this, `col >= max(sample)` bisects past every
            # boundary and estimates 0.0 even when many rows hold the
            # maximum — misordering operands sorted by selectivity.
            if picked[-1] != ordered[-1]:
                picked.append(ordered[-1])
            boundaries = tuple(picked)
        else:
            boundaries = tuple(ordered)
    return ColumnStats(
        name=name,
        sample_size=total,
        distinct=len(counts),
        top_values=top_values,
        boundaries=boundaries,
    )


#: Monotonic snapshot counter behind ``TableStats.version``.  Itertools'
#: count is CPython-atomic under the GIL, so concurrent stats builds in
#: the serving layer get distinct versions without a lock.
_STATS_VERSIONS = itertools.count(1)


def build_table_stats(
    table: str,
    rows: Sequence[Mapping[str, Value]],
    row_count: int | None = None,
) -> TableStats:
    """Build full-table statistics from a row sample."""
    if not rows:
        raise DatabaseError(f"no sample rows for table {table!r}")
    with obs.span("stats.build", table=table) as sp:
        columns = {}
        for column in rows[0]:
            values = [row[column] for row in rows]
            columns[column] = build_column_stats(column, values)
        sp.update(sample_size=len(rows), columns=len(columns))
        return TableStats(
            table=table,
            row_count=row_count if row_count is not None else len(rows),
            columns=columns,
            version=next(_STATS_VERSIONS),
        )


def estimate_selectivity(stats: TableStats, pred: Predicate) -> float:
    """Estimated fraction of rows satisfying ``pred`` (independence model).

    Conjunction multiplies, disjunction uses inclusion-exclusion under
    independence (``1 - prod(1 - s_i)``), negation complements.  Estimates
    are clamped to ``[0, 1]``.
    """
    if isinstance(pred, TruePredicate):
        return 1.0
    if isinstance(pred, FalsePredicate):
        return 0.0
    if isinstance(pred, Comparison):
        return _comparison_selectivity(stats, pred)
    if isinstance(pred, InSet):
        column = stats.column(pred.column)
        total = sum(column.equality_selectivity(v) for v in pred.values)
        return min(total, 1.0)
    if isinstance(pred, Interval):
        column = stats.column(pred.column)
        return column.range_selectivity(
            pred.low, pred.high, pred.low_closed, pred.high_closed
        )
    if isinstance(pred, Not):
        return max(0.0, 1.0 - estimate_selectivity(stats, pred.operand))
    if isinstance(pred, And):
        result = 1.0
        for operand in pred.operands:
            result *= estimate_selectivity(stats, operand)
        return result
    if isinstance(pred, Or):
        miss = 1.0
        for operand in pred.operands:
            miss *= 1.0 - estimate_selectivity(stats, operand)
        return 1.0 - miss
    raise DatabaseError(f"cannot estimate selectivity of {pred!r}")


def record_estimator_accuracy(
    table: str,
    predicate: Predicate,
    estimated: float,
    actual: float,
    rows_total: int,
    static_estimated: float | None = None,
) -> None:
    """Log one estimated-vs-actual selectivity pair to the trace.

    ``estimated`` is the estimate the optimizer *acted on* (the
    calibrated overlay when calibration is active); ``actual`` is the
    measured fraction of rows satisfying ``predicate`` after execution.
    ``static_estimated``, when given, is the uncalibrated estimate for
    the same predicate — ``trace-report``'s Calibration section pairs
    the two into before/after absolute-error quantiles, the
    estimate-vs-actual feedback loop semantic-predicate optimizers use
    to reorder expensive predicates.
    """
    fields = {
        "table": table,
        "predicate": repr(predicate),
        "estimated": float(estimated),
        "actual": float(actual),
        "rows_total": int(rows_total),
        "abs_error": abs(float(estimated) - float(actual)),
    }
    if static_estimated is not None:
        fields["static_estimated"] = float(static_estimated)
        fields["static_abs_error"] = abs(
            float(static_estimated) - float(actual)
        )
    obs.record("estimator_accuracy", **fields)


def _comparison_selectivity(stats: TableStats, pred: Comparison) -> float:
    column = stats.column(pred.column)
    if pred.op is Op.EQ:
        return column.equality_selectivity(pred.value)
    if pred.op is Op.NE:
        return max(0.0, 1.0 - column.equality_selectivity(pred.value))
    if pred.op is Op.LT:
        return column.range_selectivity(None, pred.value, True, False)
    if pred.op is Op.LE:
        return column.range_selectivity(None, pred.value, True, True)
    if pred.op is Op.GT:
        return column.range_selectivity(pred.value, None, False, True)
    return column.range_selectivity(pred.value, None, True, True)
