"""Evaluation harness: the Section 5.1 methodology and its reports."""

from repro.workload.files import read_workload_file, write_workload_file
from repro.workload.measurement import (
    FAMILIES,
    FAMILY_CLUSTERING,
    FAMILY_DECISION_TREE,
    FAMILY_NAIVE_BAYES,
    QueryMeasurement,
)
from repro.workload.report import (
    SELECTIVITY_BUCKETS,
    SelectivityBucketRow,
    TightnessPoint,
    format_table,
    plan_change_by_dataset,
    plan_change_by_family,
    reduction_by_selectivity,
    runtime_reduction_by_family,
    tightness_scatter,
    tightness_summary,
)
from repro.workload.runner import (
    LoadedDataset,
    load_dataset,
    original_selectivities,
    run_family,
    verify_envelope_soundness,
)

__all__ = [
    "FAMILIES",
    "FAMILY_CLUSTERING",
    "FAMILY_DECISION_TREE",
    "FAMILY_NAIVE_BAYES",
    "LoadedDataset",
    "QueryMeasurement",
    "SELECTIVITY_BUCKETS",
    "SelectivityBucketRow",
    "TightnessPoint",
    "format_table",
    "load_dataset",
    "read_workload_file",
    "original_selectivities",
    "plan_change_by_dataset",
    "plan_change_by_family",
    "reduction_by_selectivity",
    "run_family",
    "runtime_reduction_by_family",
    "tightness_scatter",
    "tightness_summary",
    "verify_envelope_soundness",
    "write_workload_file",
]
