"""Workload files (paper Section 5.1).

"We create a workload file containing all queries for the (data set, mining
model) combination ... we invoke the Index Tuning Wizard tool ... by
passing it the above workload file as input."

The advisor in this library consumes predicates directly, but the workload
*file* remains useful as an artifact: it records exactly which SQL the
evaluation ran, can be re-fed to the advisor, and is diffable across runs.
One statement per line, ``--`` comments allowed.
"""

from __future__ import annotations

from collections.abc import Mapping
from pathlib import Path

from repro.core.envelope import UpperEnvelope
from repro.core.predicates import Value
from repro.exceptions import WorkloadError
from repro.sql.compiler import select_statement


def write_workload_file(
    path: str | Path,
    table: str,
    envelopes: Mapping[Value, UpperEnvelope],
) -> Path:
    """Write the per-class workload of one (dataset, model) combination.

    Each class contributes ``SELECT * FROM table WHERE <envelope>`` —
    exactly the queries of the paper's evaluation methodology.
    """
    if not envelopes:
        raise WorkloadError("workload needs at least one envelope")
    path = Path(path)
    lines = [
        f"-- workload for table {table}: "
        f"{len(envelopes)} per-class envelope queries"
    ]
    for label in sorted(envelopes, key=str):
        envelope = envelopes[label]
        lines.append(f"-- class {label!r} ({envelope.derivation})")
        lines.append(select_statement(table, envelope.predicate) + ";")
    path.write_text("\n".join(lines) + "\n")
    return path


def read_workload_file(path: str | Path) -> list[str]:
    """Read back the SQL statements of a workload file (comments dropped)."""
    statements: list[str] = []
    for line in Path(path).read_text().splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("--"):
            continue
        statements.append(stripped.rstrip(";"))
    if not statements:
        raise WorkloadError(f"workload file {path} contains no statements")
    return statements
