"""Measurement records produced by the evaluation harness.

One :class:`QueryMeasurement` per (dataset, model, class) matches the unit
of the paper's evaluation: the workload query
``SELECT * FROM T WHERE <envelope>`` compared against ``SELECT * FROM T``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.predicates import Value
from repro.sql.planner import AccessPath

#: Model-family names used across reports (the paper's three columns).
FAMILY_DECISION_TREE = "decision_tree"
FAMILY_NAIVE_BAYES = "naive_bayes"
FAMILY_CLUSTERING = "clustering"
FAMILIES = (FAMILY_DECISION_TREE, FAMILY_NAIVE_BAYES, FAMILY_CLUSTERING)


@dataclass(frozen=True)
class QueryMeasurement:
    """Everything the Section 5 experiments need about one workload query."""

    dataset: str
    family: str
    model_name: str
    class_label: Value
    #: Fraction of rows the model predicts as this class (the paper's
    #: *original selectivity*).
    original_selectivity: float
    #: Measured fraction of rows satisfying the upper envelope.
    envelope_selectivity: float
    envelope_disjuncts: int
    envelope_exact: bool
    envelope_is_false: bool
    #: Whether the selectivity gate stripped the envelope before execution.
    envelope_used: bool
    access_path: AccessPath
    plan_changed: bool
    scan_seconds: float
    query_seconds: float
    #: Envelope-derivation time (the training-time precompute).
    derive_seconds: float
    rows_total: int
    rows_matched: int

    @property
    def reduction(self) -> float:
        """Fractional running-time reduction versus the full scan."""
        if self.scan_seconds <= 0:
            return 0.0
        return 1.0 - self.query_seconds / self.scan_seconds

    @property
    def tightness_ratio(self) -> float:
        """Envelope selectivity over original selectivity (1.0 = exact).

        The Figure 7 tightness measure; guarded for unreachable classes.
        """
        if self.original_selectivity <= 0:
            return 1.0 if self.envelope_selectivity <= 0 else float("inf")
        return self.envelope_selectivity / self.original_selectivity
