"""Aggregation of measurements into the paper's tables and figures.

Each function reproduces one reporting artifact of Section 5.2; the
formatting helpers print them in the paper's layout so a reader can place
our numbers next to the published ones (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.exceptions import WorkloadError
from repro.workload.measurement import FAMILIES, QueryMeasurement

#: Figure 6's selectivity buckets (fractions, upper-bound inclusive).
SELECTIVITY_BUCKETS = (
    ("<1%", 0.0, 0.01),
    ("1-10%", 0.01, 0.10),
    ("10-50%", 0.10, 0.50),
    (">50%", 0.50, 1.0001),
)


def _require(measurements: Sequence[QueryMeasurement]) -> None:
    if not measurements:
        raise WorkloadError("no measurements to aggregate")


def runtime_reduction_by_family(
    measurements: Sequence[QueryMeasurement],
) -> dict[str, float]:
    """Average % running-time reduction per model family.

    Reproduces the first table of Section 5.2.1 (paper: decision tree
    73.7%, naive Bayes 63.5%, clustering 79.0%).
    """
    _require(measurements)
    result: dict[str, float] = {}
    for family in FAMILIES:
        rows = [m for m in measurements if m.family == family]
        if rows:
            result[family] = 100.0 * sum(m.reduction for m in rows) / len(rows)
    return result


def plan_change_by_family(
    measurements: Sequence[QueryMeasurement],
) -> dict[str, float]:
    """% of queries whose physical plan changed, per family.

    Reproduces the second table of Section 5.2.1 (paper: 72.7 / 75.3 /
    76.6).
    """
    _require(measurements)
    result: dict[str, float] = {}
    for family in FAMILIES:
        rows = [m for m in measurements if m.family == family]
        if rows:
            changed = sum(1 for m in rows if m.plan_changed)
            result[family] = 100.0 * changed / len(rows)
    return result


def plan_change_by_dataset(
    measurements: Sequence[QueryMeasurement], family: str
) -> dict[str, float]:
    """Per-dataset % plan change for one family (Figures 3, 4, 5)."""
    _require(measurements)
    rows = [m for m in measurements if m.family == family]
    datasets = sorted({m.dataset for m in rows})
    result: dict[str, float] = {}
    for dataset in datasets:
        subset = [m for m in rows if m.dataset == dataset]
        changed = sum(1 for m in subset if m.plan_changed)
        result[dataset] = 100.0 * changed / len(subset)
    return result


@dataclass(frozen=True)
class SelectivityBucketRow:
    """One bar pair of Figure 6."""

    bucket: str
    original_reduction_pct: float
    envelope_reduction_pct: float
    original_count: int
    envelope_count: int


def reduction_by_selectivity(
    measurements: Sequence[QueryMeasurement],
) -> list[SelectivityBucketRow]:
    """Average reduction bucketed by original and by envelope selectivity.

    Reproduces Figure 6: the paper buckets every (class, dataset, model)
    query by its selectivity and shows that reductions concentrate below
    10% selectivity, with paired bars for original vs upper-envelope
    selectivity.
    """
    _require(measurements)
    rows: list[SelectivityBucketRow] = []
    for name, low, high in SELECTIVITY_BUCKETS:
        by_original = [
            m
            for m in measurements
            if low <= m.original_selectivity < high
        ]
        by_envelope = [
            m
            for m in measurements
            if low <= m.envelope_selectivity < high
        ]
        rows.append(
            SelectivityBucketRow(
                bucket=name,
                original_reduction_pct=_mean_reduction(by_original),
                envelope_reduction_pct=_mean_reduction(by_envelope),
                original_count=len(by_original),
                envelope_count=len(by_envelope),
            )
        )
    return rows


def _mean_reduction(rows: Iterable[QueryMeasurement]) -> float:
    rows = list(rows)
    if not rows:
        return 0.0
    return 100.0 * sum(m.reduction for m in rows) / len(rows)


@dataclass(frozen=True)
class TightnessPoint:
    """One point of the Figure 7 scatter plot."""

    dataset: str
    family: str
    class_label: object
    original_selectivity: float
    envelope_selectivity: float


def tightness_scatter(
    measurements: Sequence[QueryMeasurement],
    families: Sequence[str] = ("naive_bayes", "clustering"),
) -> list[TightnessPoint]:
    """Original vs envelope selectivity per class (Figure 7).

    Restricted to naive Bayes and clustering by default — decision-tree
    envelopes are exact, so their scatter is the diagonal by construction.
    """
    _require(measurements)
    return [
        TightnessPoint(
            dataset=m.dataset,
            family=m.family,
            class_label=m.class_label,
            original_selectivity=m.original_selectivity,
            envelope_selectivity=m.envelope_selectivity,
        )
        for m in measurements
        if m.family in families
    ]


def tightness_summary(
    points: Sequence[TightnessPoint],
    tight_factor: float = 2.0,
    index_worthy: float = 0.1,
) -> dict[str, float]:
    """Summary statistics for the Figure 7 discussion.

    The paper's reading of the scatter: "a significant fraction of the
    upper envelope predicates either have selectivities close to the
    original selectivity or have selectivity small enough that use of
    indexes ... is attractive".  Returns the fraction in each category.
    """
    if not points:
        raise WorkloadError("no tightness points")
    tight = 0
    small = 0
    for point in points:
        if point.envelope_selectivity <= max(
            point.original_selectivity * tight_factor, 0.01
        ):
            tight += 1
        elif point.envelope_selectivity <= index_worthy:
            small += 1
    total = len(points)
    return {
        "tight_fraction": tight / total,
        "small_enough_fraction": small / total,
        "useful_fraction": (tight + small) / total,
    }


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain monospace table used by every experiment's printed output."""
    widths = [len(h) for h in headers]
    rendered_rows = [[_cell(v) for v in row] for row in rows]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    separator = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rendered_rows
    ]
    return "\n".join([line, separator, *body])


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
