"""The Section 5.1 evaluation methodology, end to end.

For one (dataset, mining model) combination:

1. train the model and derive per-class upper envelopes (training-time
   precompute, Section 4.2),
2. expand the training rows past the target row count by repeated doubling
   and load them into SQLite,
3. build the per-class workload ``SELECT * FROM T WHERE <envelope>`` and
   hand it to the index advisor (the Index Tuning Wizard stand-in), which
   creates its recommended indexes,
4. execute every workload query, recording the physical plan, the measured
   selectivities, and the running time against the ``SELECT * FROM T``
   baseline.

The paper's selectivity gate applies: an envelope whose estimated
selectivity is above the gate is stripped (no plan change, no reduction),
mirroring "for high selectivity classes, adding upper envelope predicates
is rarely useful".
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.envelope import UpperEnvelope
from repro.core.predicates import TRUE, TruePredicate, Value, atom_count
from repro.data.expansion import expand_rows
from repro.data.generators import Dataset
from repro.exceptions import WorkloadError
from repro.mining.base import MiningModel
from repro.sql.advisor import tune_for_workload
from repro.sql.compiler import select_statement
from repro.sql.database import Database
from repro.sql.planner import (
    AccessPath,
    CONSTANT_SCAN_PLAN,
    capture_plan,
)
from repro import obs
from repro.sql.calibration import CalibratedEstimator, CalibrationStore
from repro.sql.schema import TableSchema
from repro.sql.stats import (
    TableStats,
    build_table_stats,
    record_estimator_accuracy,
)
from repro.workload.measurement import QueryMeasurement


@dataclass
class LoadedDataset:
    """A dataset expanded and loaded into a database table."""

    dataset: Dataset
    db: Database
    table: str
    rows_total: int
    scan_seconds: float = field(default=0.0)

    def measure_scan(self, repeats: int = 2) -> float:
        """(Re)measure the full-scan baseline; best of ``repeats`` runs."""
        best = float("inf")
        for _ in range(max(1, repeats)):
            _, seconds = self.db.timed_fetch(
                select_statement(self.table, TRUE)
            )
            best = min(best, seconds)
        self.scan_seconds = best
        return best


def load_dataset(
    dataset: Dataset,
    rows_target: int,
    db: Database | None = None,
) -> LoadedDataset:
    """Expand ``dataset`` by doubling and load it into a (new) database."""
    if db is None:
        db = Database()
    table = dataset.name
    schema = TableSchema.from_rows(
        table, [_features_only(dataset, dataset.train_rows[0])]
    )
    db.create_table(schema)
    rows = (
        _features_only(dataset, row)
        for row in expand_rows(dataset.train_rows, rows_target)
    )
    total = db.insert_rows(table, rows)
    loaded = LoadedDataset(dataset=dataset, db=db, table=table, rows_total=total)
    loaded.measure_scan()
    return loaded


def _features_only(dataset: Dataset, row: dict) -> dict:
    """Project away the label column — the test table stores only features.

    The paper is explicit that storing the class label with each tuple "is
    not acceptable"; predictions must come from applying the model.
    """
    return {c: row[c] for c in dataset.feature_columns}


def original_selectivities(
    dataset: Dataset, model: MiningModel
) -> dict[Value, float]:
    """Per-class fraction of rows predicted as the class.

    Because the test table is the training data doubled, the predicted-class
    distribution over the training rows *is* the test-table distribution.
    """
    counts: dict[Value, int] = {label: 0 for label in model.class_labels}
    for label in model.predict_many(dataset.train_rows):
        counts[label] = counts.get(label, 0) + 1
    total = len(dataset.train_rows)
    return {label: counts.get(label, 0) / total for label in model.class_labels}


def run_family(
    loaded: LoadedDataset,
    family: str,
    model: MiningModel,
    envelopes: dict[Value, UpperEnvelope],
    selectivity_gate: float | None = 0.2,
    index_budget: int = 8,
    repeats: int = 2,
    max_envelope_atoms: int = 450,
    calibration: CalibrationStore | None = None,
    stats_cache: dict[str, TableStats] | None = None,
) -> list[QueryMeasurement]:
    """Measure every class of one model on an already-loaded dataset.

    Indexes from previous families are dropped first; the advisor then tunes
    for this family's workload, exactly as the paper runs the Tuning Wizard
    per (data set, mining model) combination.

    ``calibration``, when given, closes the estimator loop: the gate
    decision uses the calibrated overlay estimate, and every measured
    envelope selectivity is fed back into the store — a repeated run
    gates from observation instead of the static independence model.
    Calibration only moves the gate (a physical decision); measured rows
    and selectivities are unaffected.

    ``stats_cache``, shared across repeated calls, keeps the statistics
    snapshot (and its version) stable between passes — calibration
    overlays are version-guarded, so without a shared snapshot each pass
    would restart the EWMA instead of refining it.
    """
    db = loaded.db
    table = loaded.table
    db.drop_all_indexes(table)

    workload = [envelopes[label].predicate for label in model.class_labels]
    tune_for_workload(db, table, workload, budget=index_budget)
    loaded.measure_scan(repeats=repeats)

    if stats_cache is not None and table in stats_cache:
        stats = stats_cache[table]
    else:
        sample = db.sample_rows(table, 10_000)
        stats = build_table_stats(
            table, sample, row_count=loaded.rows_total
        )
        if stats_cache is not None:
            stats_cache[table] = stats
    estimator = CalibratedEstimator(stats, calibration)
    selectivities = original_selectivities(loaded.dataset, model)

    measurements: list[QueryMeasurement] = []
    baseline_plan_path = AccessPath.FULL_SCAN
    for label in model.class_labels:
        envelope = envelopes[label]
        predicate = envelope.predicate
        gated = False
        if envelope.is_false:
            plan = CONSTANT_SCAN_PLAN
            query_seconds = 0.0
            envelope_selectivity = 0.0
        else:
            estimated = estimator(predicate)
            too_unselective = (
                selectivity_gate is not None
                and estimated > selectivity_gate
            )
            # Evaluating an envelope costs per-row work proportional to its
            # atom count; past a few hundred atoms that work exceeds what a
            # selective filter saves, so such envelopes are stripped too
            # (the paper's Section 4.2 complexity concern).
            too_complex = atom_count(predicate) > max_envelope_atoms
            if too_unselective or too_complex:
                gated = True
                predicate = TRUE
            plan = capture_plan(db, table, predicate)
            if isinstance(predicate, TruePredicate):
                # The gated query *is* the baseline scan; reusing its
                # measurement avoids reporting timing jitter as a (spurious)
                # reduction or slowdown.
                query_seconds = loaded.scan_seconds
            else:
                query_seconds = _timed_best(
                    db, select_statement(table, predicate), repeats
                )
            envelope_selectivity = db.selectivity(table, envelope.predicate)
            if obs.enabled():
                # The estimate that drove the gate decision versus the
                # measured selectivity of the same envelope predicate.
                record_estimator_accuracy(
                    table,
                    envelope.predicate,
                    estimated,
                    envelope_selectivity,
                    loaded.rows_total,
                    static_estimated=estimator.static(envelope.predicate),
                )
            if calibration is not None:
                # Feed the measured selectivity back even when the gate
                # stripped the envelope — gating decisions converge from
                # observation on the next pass either way.
                calibration.observe(
                    table,
                    envelope.predicate,
                    estimated,
                    envelope_selectivity,
                    stats.version,
                )
        plan_changed = (
            plan.is_constant or plan.access_path is not baseline_plan_path
        )
        measurements.append(
            QueryMeasurement(
                dataset=loaded.dataset.name,
                family=family,
                model_name=model.name,
                class_label=label,
                original_selectivity=selectivities.get(label, 0.0),
                envelope_selectivity=envelope_selectivity,
                envelope_disjuncts=envelope.n_disjuncts,
                envelope_exact=envelope.exact,
                envelope_is_false=envelope.is_false,
                envelope_used=not gated,
                access_path=plan.access_path,
                plan_changed=plan_changed,
                scan_seconds=loaded.scan_seconds,
                query_seconds=query_seconds,
                derive_seconds=envelope.seconds,
                rows_total=loaded.rows_total,
                rows_matched=int(
                    round(envelope_selectivity * loaded.rows_total)
                ),
            )
        )
    return measurements


def _timed_best(db: Database, sql: str, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        _, seconds = db.timed_fetch(sql)
        best = min(best, seconds)
    return best


def verify_envelope_soundness(
    dataset: Dataset,
    model: MiningModel,
    envelopes: dict[Value, UpperEnvelope],
    sample: int | None = None,
) -> None:
    """Assert the upper-envelope contract on (a sample of) training rows.

    Every row must satisfy the envelope of its predicted class; a violation
    is a library bug, so this raises :class:`WorkloadError` rather than
    recording a measurement.
    """
    rows: Sequence = dataset.train_rows
    if sample is not None:
        rows = rows[:sample]
    for row, label in zip(rows, model.predict_many(rows)):
        envelope = envelopes.get(label)
        if envelope is None:
            raise WorkloadError(
                f"model {model.name!r} predicted unknown class {label!r}"
            )
        features = {c: row[c] for c in dataset.feature_columns}
        if not envelope.admits(features):
            raise WorkloadError(
                f"envelope violation: {model.name!r} predicts {label!r} "
                f"for {features} but the envelope rejects it"
            )
