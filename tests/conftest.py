"""Shared fixtures: small datasets, trained models, and catalogs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.catalog import ModelCatalog
from repro.core.regions import (
    AttributeSpace,
    BinnedDimension,
    CategoricalDimension,
    OrdinalDimension,
)
from repro.mining.decision_tree import DecisionTreeLearner
from repro.mining.kmeans import KMeansLearner
from repro.mining.naive_bayes import NaiveBayesLearner, naive_bayes_from_tables
from repro.mining.rules import RuleLearner


@pytest.fixture(scope="session")
def paper_table1_nb():
    """The naive Bayes classifier of the paper's Table 1, verbatim."""
    space = AttributeSpace(
        (
            CategoricalDimension("d0", ("m00", "m10", "m20", "m30")),
            CategoricalDimension("d1", ("m01", "m11", "m21")),
        )
    )
    priors = [0.33, 0.5, 0.17]
    d0 = [
        [0.4, 0.4, 0.05, 0.05],
        [0.1, 0.1, 0.4, 0.4],
        [0.05, 0.05, 0.4, 0.4],
    ]
    d1 = [
        [0.01, 0.5, 0.49],
        [0.7, 0.29, 0.1],
        [0.05, 0.05, 0.9],
    ]
    return naive_bayes_from_tables(
        "table1", "cls", space, ["c1", "c2", "c3"], priors, [d0, d1]
    )


def make_customer_rows(n: int = 400, seed: int = 7) -> list[dict]:
    """A small 'customers' dataset with a learnable risk label.

    Risk is 'high' for young customers with low income, 'low' for older
    affluent ones, 'medium' otherwise — with a little label noise.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        age = int(rng.integers(18, 80))
        income = float(rng.uniform(10_000, 120_000))
        gender = str(rng.choice(["female", "male"]))
        region = str(rng.choice(["north", "south", "east", "west"]))
        if age < 32 and income < 40_000:
            risk = "high"
        elif age > 55 and income > 70_000:
            risk = "low"
        else:
            risk = "medium"
        if rng.random() < 0.03:
            risk = str(rng.choice(["high", "medium", "low"]))
        rows.append(
            {
                "age": age,
                "income": income,
                "gender": gender,
                "region": region,
                "risk": risk,
            }
        )
    return rows


CUSTOMER_FEATURES = ("age", "income", "gender", "region")


@pytest.fixture(scope="session")
def customer_rows():
    return make_customer_rows()


@pytest.fixture(scope="session")
def customer_tree(customer_rows):
    return DecisionTreeLearner(
        CUSTOMER_FEATURES, "risk", max_depth=6, name="risk_tree"
    ).fit(customer_rows)


@pytest.fixture(scope="session")
def customer_nb(customer_rows):
    return NaiveBayesLearner(
        CUSTOMER_FEATURES, "risk", bins=5, name="risk_nb"
    ).fit(customer_rows)


@pytest.fixture(scope="session")
def customer_rules(customer_rows):
    return RuleLearner(
        CUSTOMER_FEATURES, "risk", name="risk_rules"
    ).fit(customer_rows)


@pytest.fixture(scope="session")
def customer_kmeans(customer_rows):
    return KMeansLearner(
        ("age", "income"), 3, name="risk_kmeans"
    ).fit(customer_rows)


@pytest.fixture(scope="session")
def customer_catalog(customer_rows, customer_tree, customer_nb):
    catalog = ModelCatalog()
    catalog.register(customer_tree)
    catalog.register(customer_nb)
    return catalog


@pytest.fixture()
def small_space():
    """A 3-dimensional mixed space used by region/covering tests."""
    return AttributeSpace(
        (
            CategoricalDimension("color", ("blue", "green", "red")),
            OrdinalDimension("size", (1, 2, 3, 4)),
            BinnedDimension("weight", (10.0, 20.0)),
        )
    )
