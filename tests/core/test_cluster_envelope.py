"""Unit tests for clustering envelopes (Section 3.3)."""

import numpy as np
import pytest

from repro.core.cluster_envelope import (
    clustering_envelopes,
    clustering_space,
    density_envelopes,
    discretized_cluster_envelopes,
    gmm_score_table,
    kmeans_score_table,
)
from repro.core.regions import AttributeSpace, BinnedDimension
from repro.exceptions import EnvelopeError
from repro.mining.density import NOISE_LABEL, DensityClusterLearner
from repro.mining.discretized_cluster import DiscretizedClusterModel
from repro.mining.gmm import GaussianMixtureModel
from repro.mining.kmeans import KMeansModel


@pytest.fixture()
def two_blob_rows():
    rng = np.random.default_rng(5)
    rows = []
    for _ in range(150):
        rows.append(
            {
                "x": float(rng.normal(0.0, 1.0)),
                "y": float(rng.normal(0.0, 1.0)),
            }
        )
    for _ in range(150):
        rows.append(
            {
                "x": float(rng.normal(12.0, 1.0)),
                "y": float(rng.normal(12.0, 1.0)),
            }
        )
    return rows


@pytest.fixture()
def two_centroid_model():
    return KMeansModel(
        "km2",
        "cluster",
        ("x", "y"),
        np.array([[0.0, 0.0], [12.0, 12.0]]),
        np.ones((2, 2)),
    )


class TestKMeansScoreTable:
    def test_interval_bounds_contain_raw_scores(self, two_centroid_model):
        space = AttributeSpace(
            (
                BinnedDimension("x", (3.0, 6.0, 9.0)),
                BinnedDimension("y", (3.0, 6.0, 9.0)),
            )
        )
        table = kmeans_score_table(two_centroid_model, space)
        rng = np.random.default_rng(0)
        for _ in range(300):
            x = float(rng.uniform(-5, 17))
            y = float(rng.uniform(-5, 17))
            cell = (
                space.dimensions[0].member_for_value(x),
                space.dimensions[1].member_for_value(y),
            )
            point = np.array([x, y])
            for k in range(2):
                score = -float(
                    (two_centroid_model.weights[k] * (point - two_centroid_model.centroids[k]) ** 2).sum()
                )
                lo = table.lo[0][k, cell[0]] + table.lo[1][k, cell[1]]
                hi = table.hi[0][k, cell[0]] + table.hi[1][k, cell[1]]
                assert lo - 1e-9 <= score <= hi + 1e-9

    def test_pairwise_diffs_contain_raw_differences(self, two_centroid_model):
        space = AttributeSpace(
            (
                BinnedDimension("x", (3.0, 6.0, 9.0)),
                BinnedDimension("y", (3.0, 6.0, 9.0)),
            )
        )
        table = kmeans_score_table(two_centroid_model, space)
        assert table.has_exact_diffs()
        rng = np.random.default_rng(1)
        diff_lo_x, diff_hi_x = table.diff_bounds(0)
        for _ in range(300):
            x = float(rng.uniform(-5, 17))
            m = space.dimensions[0].member_for_value(x)
            s0 = -((x - 0.0) ** 2)
            s1 = -((x - 12.0) ** 2)
            assert diff_lo_x[0, 1, m] - 1e-9 <= s0 - s1 <= diff_hi_x[0, 1, m] + 1e-9

    def test_space_mismatch_rejected(self, two_centroid_model):
        space = AttributeSpace((BinnedDimension("x", (3.0,)),))
        with pytest.raises(EnvelopeError):
            kmeans_score_table(two_centroid_model, space)


class TestClusteringEnvelopes:
    def test_raw_envelopes_sound_for_raw_predictions(
        self, two_centroid_model, two_blob_rows
    ):
        envelopes = clustering_envelopes(
            two_centroid_model, rows=two_blob_rows, bins=6
        )
        for row in two_blob_rows:
            label = two_centroid_model.predict(row)
            assert envelopes[label].predicate.evaluate(row)

    def test_raw_envelopes_sound_out_of_range(
        self, two_centroid_model, two_blob_rows
    ):
        envelopes = clustering_envelopes(
            two_centroid_model, rows=two_blob_rows, bins=6
        )
        for row in (
            {"x": -100.0, "y": -50.0},
            {"x": 100.0, "y": 200.0},
            {"x": -100.0, "y": 200.0},
        ):
            label = two_centroid_model.predict(row)
            assert envelopes[label].predicate.evaluate(row)

    def test_well_separated_blobs_get_selective_envelopes(
        self, two_centroid_model, two_blob_rows
    ):
        envelopes = clustering_envelopes(
            two_centroid_model, rows=two_blob_rows, bins=6
        )
        # Each envelope should reject the other blob's core.
        assert not envelopes["cluster_0"].predicate.evaluate(
            {"x": 12.0, "y": 12.0}
        )
        assert not envelopes["cluster_1"].predicate.evaluate(
            {"x": 0.0, "y": 0.0}
        )

    def test_requires_space_or_rows(self, two_centroid_model):
        with pytest.raises(EnvelopeError):
            clustering_envelopes(two_centroid_model)


class TestDiscretizedClusterEnvelopes:
    def test_exact_on_grid(self, two_centroid_model, two_blob_rows):
        space = clustering_space(two_centroid_model, two_blob_rows, bins=6)
        model = DiscretizedClusterModel(two_centroid_model, space)
        envelopes = discretized_cluster_envelopes(model)
        for row in two_blob_rows:
            label = model.predict(row)
            for candidate, envelope in envelopes.items():
                assert envelope.predicate.evaluate(row) == (
                    candidate == label
                )

    def test_gmm_base(self, two_blob_rows):
        gmm = GaussianMixtureModel(
            "g",
            "cluster",
            ("x", "y"),
            np.array([0.5, 0.5]),
            np.array([[0.0, 0.0], [12.0, 12.0]]),
            np.ones((2, 2)),
        )
        space = clustering_space(gmm, two_blob_rows, bins=6)
        model = DiscretizedClusterModel(gmm, space)
        envelopes = discretized_cluster_envelopes(model)
        for row in two_blob_rows:
            label = model.predict(row)
            assert envelopes[label].predicate.evaluate(row)


class TestGmmScoreTable:
    def test_interval_bounds_contain_raw_scores(self, two_blob_rows):
        gmm = GaussianMixtureModel(
            "g",
            "cluster",
            ("x", "y"),
            np.array([0.4, 0.6]),
            np.array([[0.0, 0.0], [12.0, 12.0]]),
            np.array([[1.0, 2.0], [3.0, 1.0]]),
        )
        space = clustering_space(gmm, two_blob_rows, bins=5)
        table = gmm_score_table(gmm, space)
        rng = np.random.default_rng(2)
        for _ in range(200):
            point = np.array(
                [float(rng.uniform(-5, 17)), float(rng.uniform(-5, 17))]
            )
            cell = space.point_for_row({"x": point[0], "y": point[1]})
            scores = gmm.component_log_scores(point) - np.log(gmm.mixing)
            for k in range(2):
                lo = table.lo[0][k, cell[0]] + table.lo[1][k, cell[1]]
                hi = table.hi[0][k, cell[0]] + table.hi[1][k, cell[1]]
                assert lo - 1e-9 <= scores[k] <= hi + 1e-9


class TestDensityEnvelopes:
    def test_exact_cluster_envelopes(self):
        rng = np.random.default_rng(11)
        rows = []
        for cx, cy in ((0.0, 0.0), (10.0, 10.0)):
            for _ in range(120):
                rows.append(
                    {
                        "x": float(rng.normal(cx, 0.8)),
                        "y": float(rng.normal(cy, 0.8)),
                    }
                )
        model = DensityClusterLearner(
            ("x", "y"), bins=6, density_threshold=3
        ).fit(rows)
        assert len(model.cluster_labels) >= 2
        envelopes = density_envelopes(model)
        for row in rows:
            label = model.predict(row)
            assert envelopes[label].predicate.evaluate(row)

    def test_noise_envelope_covers_noise_points(self):
        rng = np.random.default_rng(12)
        rows = [
            {
                "x": float(rng.normal(0.0, 0.5)),
                "y": float(rng.normal(0.0, 0.5)),
            }
            for _ in range(100)
        ]
        # A lone far-away point lands in a sparse cell -> noise.
        rows.append({"x": 50.0, "y": 50.0})
        model = DensityClusterLearner(
            ("x", "y"), bins=8, density_threshold=4
        ).fit(rows)
        envelopes = density_envelopes(model)
        noise_rows = [r for r in rows if model.predict(r) == NOISE_LABEL]
        assert noise_rows
        for row in noise_rows:
            assert envelopes[NOISE_LABEL].predicate.evaluate(row)
