"""Unit tests for the columnar batch representation."""

import numpy as np
import pytest

from repro.core.columns import ColumnBatch
from repro.exceptions import PredicateError

ROWS = [
    {"age": 30, "income": 50_000.0, "city": "north"},
    {"age": 61, "income": 90_000.0, "city": "south"},
    {"age": 25, "income": 15_000.0, "city": "north"},
    {"age": 44, "income": 72_500.0, "city": "east"},
]


class TestBasics:
    def test_len_and_rows_preserve_identity(self):
        batch = ColumnBatch(ROWS)
        assert len(batch) == 4
        # Row mappings are the originals, not copies: the executor relies
        # on this to return byte-identical rows after filtering.
        assert all(a is b for a, b in zip(batch.rows(), ROWS))

    def test_column_is_object_dtype_with_raw_values(self):
        batch = ColumnBatch(ROWS)
        ages = batch.column("age")
        assert ages.dtype == object
        assert list(ages) == [30, 61, 25, 44]
        assert all(isinstance(v, int) for v in ages)

    def test_column_is_cached(self):
        batch = ColumnBatch(ROWS)
        assert batch.column("city") is batch.column("city")

    def test_missing_column_raises_predicate_error(self):
        batch = ColumnBatch(ROWS)
        with pytest.raises(PredicateError):
            batch.column("nope")

    def test_has_column(self):
        batch = ColumnBatch(ROWS)
        assert batch.has_column("age")
        assert not batch.has_column("nope")
        # Empty batches carry every column vacuously: all masks over them
        # are empty, so no lookup can go wrong.
        assert ColumnBatch([]).has_column("anything")


class TestKinds:
    def test_kind_classification(self):
        rows = [{"n": 1, "s": "x", "m": 2}, {"n": 2.5, "s": "y", "m": "z"}]
        batch = ColumnBatch(rows)
        assert batch.kind("n") == "numeric"
        assert batch.kind("s") == "string"
        assert batch.kind("m") == "mixed"
        assert batch.is_numeric("n")
        assert not batch.is_numeric("s")
        assert not batch.is_numeric("m")

    def test_empty_batch_reports_numeric(self):
        batch = ColumnBatch([])
        assert batch.kind("whatever") == "numeric"
        assert batch.numeric("whatever").shape == (0,)

    def test_numeric_view_is_float64_and_cached(self):
        batch = ColumnBatch(ROWS)
        ages = batch.numeric("age")
        assert ages.dtype == np.float64
        assert list(ages) == [30.0, 61.0, 25.0, 44.0]
        assert batch.numeric("age") is ages

    def test_numeric_on_string_column_raises(self):
        batch = ColumnBatch(ROWS)
        with pytest.raises(PredicateError):
            batch.numeric("city")

    def test_numeric_on_mixed_column_raises(self):
        batch = ColumnBatch([{"m": 1}, {"m": "one"}])
        with pytest.raises(PredicateError):
            batch.numeric("m")


class TestMatrix:
    def test_matrix_shape_and_values(self):
        batch = ColumnBatch(ROWS)
        m = batch.matrix(["age", "income"])
        assert m.shape == (4, 2)
        assert m.dtype == np.float64
        assert list(m[:, 0]) == [30.0, 61.0, 25.0, 44.0]
        assert list(m[:, 1]) == [50_000.0, 90_000.0, 15_000.0, 72_500.0]

    def test_matrix_no_columns(self):
        assert ColumnBatch(ROWS).matrix([]).shape == (4, 0)
        assert ColumnBatch([]).matrix([]).shape == (0, 0)

    def test_matrix_reuses_numeric_cache(self):
        # Regression: matrix() ran a fresh astype per call, bypassing
        # the float64 cache numeric() maintains.
        batch = ColumnBatch(ROWS)
        first = batch.numeric("age")
        stacked = batch.matrix(["age"])
        assert list(stacked[:, 0]) == list(first)
        assert batch.matrix(["age"])[0, 0] == first[0]
        # The per-column source array is the cached one, not a copy.
        assert batch._feature_column("age") is first

    def test_matrix_caches_lenient_conversions(self):
        # Numeric strings take the lenient float() path; repeated
        # matrix() calls must reuse that conversion, not redo it.
        rows = [{"n": "1.5"}, {"n": "2.5"}]
        batch = ColumnBatch(rows)
        first = batch._feature_column("n")
        assert list(first) == [1.5, 2.5]
        assert batch._feature_column("n") is first

    def test_take_carries_lenient_cache(self):
        rows = [{"n": "1.5"}, {"n": "2.5"}, {"n": "3.5"}]
        batch = ColumnBatch(rows)
        batch.matrix(["n"])
        child = batch.take(np.array([2, 0]))
        assert list(child._feature_column("n")) == [3.5, 1.5]


class TestTakeAndSelect:
    def test_take_subsets_in_given_order(self):
        batch = ColumnBatch(ROWS)
        child = batch.take(np.array([2, 0]))
        assert len(child) == 2
        assert child.rows()[0] is ROWS[2]
        assert child.rows()[1] is ROWS[0]
        assert list(child.column("age")) == [25, 30]

    def test_take_carries_materialized_caches(self):
        batch = ColumnBatch(ROWS)
        batch.column("city")
        batch.numeric("income")
        child = batch.take(np.array([1, 3]))
        assert list(child.column("city")) == ["south", "east"]
        assert list(child.numeric("income")) == [90_000.0, 72_500.0]

    def test_take_of_mixed_column_recomputes_kind(self):
        rows = [{"m": 1}, {"m": "one"}, {"m": 3}]
        batch = ColumnBatch(rows)
        assert batch.kind("m") == "mixed"
        # Only the numeric rows survive: the child must not inherit the
        # stale "mixed" verdict, or numeric() would wrongly refuse.
        child = batch.take(np.array([0, 2]))
        assert child.kind("m") == "numeric"
        assert list(child.numeric("m")) == [1.0, 3.0]

    def test_take_empty(self):
        child = ColumnBatch(ROWS).take(np.array([], dtype=np.int64))
        assert len(child) == 0
        assert list(child.rows()) == []

    def test_select_returns_original_mappings(self):
        batch = ColumnBatch(ROWS)
        mask = np.array([True, False, False, True])
        selected = batch.select(mask)
        assert selected[0] is ROWS[0]
        assert selected[1] is ROWS[3]
        assert batch.select(np.zeros(4, dtype=bool)) == []
