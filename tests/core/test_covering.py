"""Unit tests for greedy rectangle covering."""

import pytest

from repro.core.covering import cover_cells
from repro.core.regions import (
    AttributeSpace,
    CategoricalDimension,
    OrdinalDimension,
)
from repro.exceptions import RegionError


@pytest.fixture()
def grid_space():
    return AttributeSpace(
        (
            OrdinalDimension("x", (0, 1, 2, 3)),
            OrdinalDimension("y", (0, 1, 2, 3)),
        )
    )


def covered(regions):
    return {cell for region in regions for cell in region.iter_cells()}


class TestCoverCells:
    def test_exact_cover_of_rectangle(self, grid_space):
        cells = {(x, y) for x in (1, 2) for y in (0, 1, 2)}
        regions = cover_cells(grid_space, cells)
        assert covered(regions) == cells
        assert len(regions) == 1

    def test_exact_cover_of_l_shape(self, grid_space):
        cells = {(0, 0), (1, 0), (2, 0), (0, 1), (0, 2)}
        regions = cover_cells(grid_space, cells)
        assert covered(regions) == cells
        assert len(regions) <= 3

    def test_scattered_cells(self, grid_space):
        cells = {(0, 0), (3, 3), (0, 3)}
        regions = cover_cells(grid_space, cells)
        assert covered(regions) == cells

    def test_empty_input(self, grid_space):
        assert cover_cells(grid_space, []) == []

    def test_full_grid_single_region(self, grid_space):
        cells = set(grid_space.iter_cells())
        regions = cover_cells(grid_space, cells)
        assert len(regions) == 1
        assert covered(regions) == cells

    def test_unordered_dimension_allows_gap_jumps(self):
        space = AttributeSpace(
            (
                CategoricalDimension("c", ("a", "b", "c", "d")),
                OrdinalDimension("y", (0, 1)),
            )
        )
        # Members a and d (non-adjacent) share the same y slice: an
        # unordered dimension may grow across the gap, an ordered one not.
        cells = {(0, 0), (3, 0)}
        regions = cover_cells(space, cells)
        assert covered(regions) == cells
        assert len(regions) == 1

    def test_ordered_dimension_gap_still_exact(self, grid_space):
        # Greedy growth keeps ordered dimensions contiguous, but the final
        # merge pass may union across a gap; the cover must stay exact
        # either way (the gap compiles to an OR of ranges).
        cells = {(0, 0), (2, 0)}
        regions = cover_cells(grid_space, cells)
        assert covered(regions) == cells
        unmerged = cover_cells(grid_space, cells, merge=False)
        assert covered(unmerged) == cells
        assert len(unmerged) == 2

    def test_wrong_dimensionality_rejected(self, grid_space):
        with pytest.raises(RegionError):
            cover_cells(grid_space, [(0, 0, 0)])

    def test_separate_blocks(self, grid_space):
        cells = {(0, 0), (0, 1), (2, 2), (2, 3), (3, 2), (3, 3)}
        regions = cover_cells(grid_space, cells)
        assert covered(regions) == cells
        assert len(regions) == 2
