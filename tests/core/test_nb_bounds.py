"""Unit tests for region bounds, shrink, and entropy split."""

import numpy as np
import pytest

from repro.core.derive import score_table_from_naive_bayes
from repro.core.nb_bounds import (
    BoundsMode,
    RegionBounds,
    RegionStatus,
    classify_region,
    entropy_split,
    shrink_region,
)
from repro.core.regions import Region


@pytest.fixture()
def table(paper_table1_nb):
    return score_table_from_naive_bayes(paper_table1_nb)


def label_index(table, label):
    return table.class_index(label)


class TestRegionBoundsSeparate:
    def test_paper_figure2_starting_region(self, table):
        """Figure 2(a): the full region is AMBIGUOUS for class c1.

        The expected minProb/maxProb follow the paper's formulas applied to
        Table 1's printed probabilities.  (The paper's own Figure 2 figures
        use ``Pr(m21|c2) = 0.01`` where Table 1 prints ``0.1`` — an internal
        typo in the paper; we follow the table.)
        """
        region = Region.full(table.space)
        target = label_index(table, "c1")
        bounds = RegionBounds(table, region, target)
        assert np.exp(bounds.min_score) == pytest.approx(
            [0.33 * 0.05 * 0.01, 0.5 * 0.1 * 0.1, 0.17 * 0.05 * 0.05],
            rel=1e-9,
        )
        assert np.exp(bounds.max_score) == pytest.approx(
            [0.33 * 0.4 * 0.5, 0.5 * 0.4 * 0.7, 0.17 * 0.4 * 0.9],
            rel=1e-9,
        )
        assert bounds.status() is RegionStatus.AMBIGUOUS

    def test_paper_figure2_must_win_region(self, table):
        """Figure 2(d): region (d0:[0..1], d1:[0..1]) is MUST-WIN for c1...

        ...in the paper's narrative; with Table 1's actual numbers the
        winning sub-region for c1 is (d0:[0..1], d1:[1..2]), which the
        per-cell predictions confirm.  We assert that region's MUST-WIN.
        """
        region = Region(((0, 1), (1, 2)))
        target = label_index(table, "c1")
        assert classify_region(table, region, target) is RegionStatus.MUST_WIN

    def test_must_lose_region(self, table):
        # d1 = m01 (member 0) always predicts c2, so c1 loses there.
        region = Region(((0, 1, 2, 3), (0,)))
        target = label_index(table, "c1")
        assert classify_region(table, region, target) is RegionStatus.MUST_LOSE

    def test_statuses_consistent_with_cells(self, table):
        """MUST_WIN/MUST_LOSE verdicts must agree with per-cell predictions."""
        regions = [
            Region(((a, b), (c,)))
            for a in range(4)
            for b in range(4)
            if a < b
            for c in range(3)
        ]
        for target in range(3):
            for region in regions:
                status = classify_region(table, region, target)
                cell_wins = [
                    table.predict_cell(cell) == target
                    for cell in region.iter_cells()
                ]
                if status is RegionStatus.MUST_WIN:
                    assert all(cell_wins), (region, target)
                elif status is RegionStatus.MUST_LOSE:
                    assert not any(cell_wins), (region, target)


class TestRegionBoundsPairwise:
    def test_pairwise_never_weaker_than_separate(self, table):
        """Pairwise verdicts refine separate ones, never contradict them."""
        for target in range(3):
            for a in range(4):
                for c in range(3):
                    region = Region(((a,), (c,)))
                    separate = classify_region(
                        table, region, target, BoundsMode.SEPARATE
                    )
                    pairwise = classify_region(
                        table, region, target, BoundsMode.PAIRWISE
                    )
                    if separate is not RegionStatus.AMBIGUOUS:
                        assert pairwise is separate

    def test_pairwise_exact_on_cells(self, table):
        """With exact scores, single-cell regions are never ambiguous."""
        for target in range(3):
            for cell in table.space.iter_cells():
                region = Region(tuple((m,) for m in cell))
                status = classify_region(
                    table, region, target, BoundsMode.PAIRWISE
                )
                predicted = table.predict_cell(cell)
                if predicted == target:
                    assert status is RegionStatus.MUST_WIN
                else:
                    assert status is RegionStatus.MUST_LOSE

    def test_soundness_on_larger_regions(self, table):
        for target in range(3):
            region = Region(((0, 1, 2), (0, 1)))
            status = classify_region(
                table, region, target, BoundsMode.PAIRWISE
            )
            cell_wins = [
                table.predict_cell(cell) == target
                for cell in region.iter_cells()
            ]
            if status is RegionStatus.MUST_WIN:
                assert all(cell_wins)
            elif status is RegionStatus.MUST_LOSE:
                assert not any(cell_wins)


class TestShrink:
    def test_shrink_drops_losing_members(self, table):
        """Figure 2(b/c): shrinking the full region for c1 drops d1=m21...

        With Table 1's actual numbers the member dropped for c1 is m01
        (where c2 always wins); the shrunk region must keep every c1 cell.
        """
        target = label_index(table, "c1")
        region = Region.full(table.space)
        shrunk = shrink_region(table, region, target)
        assert shrunk is not None
        for cell in table.space.iter_cells():
            if table.predict_cell(cell) == target:
                assert shrunk.contains(cell)
        assert shrunk.cell_count() < region.cell_count()

    def test_shrink_to_empty_returns_none(self, table):
        # Region entirely inside c2 territory shrinks to nothing for c3.
        target = label_index(table, "c3")
        region = Region(((0, 1), (0,)))
        assert shrink_region(table, region, target) is None

    def test_shrink_preserves_region_without_change(self, table):
        target = label_index(table, "c1")
        region = Region(((0, 1), (1, 2)))  # pure c1 region
        shrunk = shrink_region(table, region, target)
        assert shrunk == region


class TestEntropySplit:
    def test_split_returns_valid_partition(self, table):
        region = Region.full(table.space)
        split = entropy_split(table, region, 0)
        assert split is not None
        dim, left = split
        members = set(region.members[dim])
        assert set(left) < members
        assert left

    def test_single_cell_cannot_split(self, table):
        region = Region(((0,), (0,)))
        assert entropy_split(table, region, 0) is None

    def test_split_separates_classes(self, table):
        """On Table 1, d1 separates c2 (m01) well from c1; the chosen cut
        should isolate class structure rather than split arbitrarily."""
        target = label_index(table, "c2")
        region = Region.full(table.space)
        split = entropy_split(table, region, target)
        assert split is not None
