"""Unit tests for Algorithm 1 (top-down envelope derivation)."""

import pytest

from repro.core.derive import score_table_from_naive_bayes
from repro.core.nb_bounds import BoundsMode
from repro.core.nb_envelope import (
    derive_all_envelopes,
    derive_envelope,
    enumerate_envelope_for_table,
    envelope_grid_selectivity,
)
from repro.core.predicates import FalsePredicate
from repro.exceptions import EnvelopeError


@pytest.fixture()
def table(paper_table1_nb):
    return score_table_from_naive_bayes(paper_table1_nb)


def row_for_cell(model, cell):
    return {
        dim.name: dim.values[member]
        for dim, member in zip(model.space.dimensions, cell)
    }


def assert_sound(model, table, result):
    """Every cell predicted as the class must satisfy the envelope."""
    target = table.class_index(result.class_label)
    for cell in table.space.iter_cells():
        if table.predict_cell(cell) == target:
            row = row_for_cell(model, cell)
            assert result.predicate.evaluate(row), (result.class_label, row)


class TestDeriveEnvelope:
    @pytest.mark.parametrize("label", ["c1", "c2", "c3"])
    @pytest.mark.parametrize(
        "mode", [BoundsMode.SEPARATE, BoundsMode.PAIRWISE]
    )
    def test_soundness(self, paper_table1_nb, table, label, mode):
        result = derive_envelope(table, label, bounds_mode=mode)
        assert_sound(paper_table1_nb, table, result)

    def test_paper_worked_example_exact(self, paper_table1_nb, table):
        """On Table 1 the search fully resolves: envelopes are exact."""
        for label in ("c1", "c2", "c3"):
            result = derive_envelope(table, label)
            assert result.exact
            target = table.class_index(label)
            for cell in table.space.iter_cells():
                row = row_for_cell(paper_table1_nb, cell)
                assert result.predicate.evaluate(row) == (
                    table.predict_cell(cell) == target
                )

    def test_paper_envelope_for_c2(self, paper_table1_nb, table):
        """Section 3.2.2's stated envelope of c2:
        (d0 in {m20, m30} AND d1 in {m01, m11}) OR (d1 = m01)."""
        result = derive_envelope(table, "c2")
        expected_cells = {
            (0, 0), (1, 0), (2, 0), (3, 0),  # d1 = m01 column
            (2, 1), (3, 1),                  # d0 in {m20,m30}, d1 = m11
        }
        actual = {
            cell
            for cell in table.space.iter_cells()
            if result.predicate.evaluate(row_for_cell(paper_table1_nb, cell))
        }
        assert actual == expected_cells

    def test_zero_budget_keeps_sound_envelope(self, paper_table1_nb, table):
        result = derive_envelope(table, "c1", max_nodes=0)
        assert_sound(paper_table1_nb, table, result)
        assert not result.exact or result.ambiguous_kept == 0

    def test_merge_reduces_disjuncts(self, table):
        merged = derive_envelope(table, "c2", merge=True)
        unmerged = derive_envelope(table, "c2", merge=False)
        assert len(merged.regions) <= len(unmerged.regions)

    def test_max_regions_cap(self, table):
        result = derive_envelope(table, "c2", max_regions=1)
        assert len(result.regions) <= 1

    def test_negative_budget_rejected(self, table):
        with pytest.raises(EnvelopeError):
            derive_envelope(table, "c1", max_nodes=-1)

    def test_unknown_label_rejected(self, table):
        with pytest.raises(EnvelopeError):
            derive_envelope(table, "nope")

    def test_no_shrink_still_sound(self, paper_table1_nb, table):
        result = derive_envelope(table, "c1", shrink=False)
        assert_sound(paper_table1_nb, table, result)

    def test_unreachable_class_gives_false(self):
        """A class whose prior is vanishingly small never wins anywhere."""
        from repro.core.regions import AttributeSpace, CategoricalDimension
        from repro.mining.naive_bayes import naive_bayes_from_tables

        space = AttributeSpace((CategoricalDimension("a", ("x", "y")),))
        model = naive_bayes_from_tables(
            "m",
            "cls",
            space,
            ["big", "tiny"],
            [0.999999, 0.000001],
            [[[0.5, 0.5], [0.5, 0.5]]],
        )
        table = score_table_from_naive_bayes(model)
        result = derive_envelope(table, "tiny")
        assert result.is_empty
        assert isinstance(result.predicate, FalsePredicate)


class TestDeriveAllEnvelopes:
    def test_partition_coverage(self, paper_table1_nb, table):
        """Per-class envelopes must jointly cover the whole grid."""
        envelopes = derive_all_envelopes(table)
        for cell in table.space.iter_cells():
            row = row_for_cell(paper_table1_nb, cell)
            assert any(
                result.predicate.evaluate(row)
                for result in envelopes.values()
            )


class TestEnumerationBaseline:
    def test_matches_topdown_on_table1(self, paper_table1_nb, table):
        for label in ("c1", "c2", "c3"):
            enumerated = enumerate_envelope_for_table(table, label)
            derived = derive_envelope(table, label)
            target = table.class_index(label)
            for cell in table.space.iter_cells():
                row = row_for_cell(paper_table1_nb, cell)
                expected = table.predict_cell(cell) == target
                assert enumerated.predicate.evaluate(row) == expected
                assert derived.predicate.evaluate(row) == expected

    def test_cell_limit_guard(self, table):
        with pytest.raises(Exception):
            enumerate_envelope_for_table(table, "c1", cell_limit=3)

    def test_enumeration_rejects_interval_tables(self):
        import numpy as np

        from repro.core.regions import AttributeSpace, CategoricalDimension
        from repro.core.score_model import ScoreTable

        space = AttributeSpace((CategoricalDimension("a", ("x",)),))
        table = ScoreTable(
            space,
            ("c0",),
            np.zeros(1),
            [np.array([[0.0]])],
            [np.array([[1.0]])],
        )
        with pytest.raises(EnvelopeError):
            enumerate_envelope_for_table(table, "c0")


class TestGridSelectivity:
    def test_exact_envelope_selectivity(self, table):
        result = derive_envelope(table, "c2")
        fraction = envelope_grid_selectivity(result, table.space)
        wins = sum(
            1
            for cell in table.space.iter_cells()
            if table.predict_cell(cell) == table.class_index("c2")
        )
        assert fraction == pytest.approx(wins / table.space.cell_count())
