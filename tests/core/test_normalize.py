"""Unit tests for normalization, simplification, and transitivity."""

import pytest

from repro.core.normalize import (
    allowed_values,
    simplify,
    to_dnf,
    to_nnf,
)
from repro.core.predicates import (
    FALSE,
    TRUE,
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    conjunction,
    disjunction,
    equals,
    in_set,
)
from repro.exceptions import NormalizationError

ROWS = [
    {"a": 1, "b": 10.0, "c": "x"},
    {"a": 2, "b": 20.0, "c": "y"},
    {"a": 3, "b": 30.0, "c": "z"},
    {"a": 1, "b": 30.0, "c": "y"},
    {"a": 5, "b": 5.0, "c": "x"},
]


def assert_equivalent(original, rewritten):
    for row in ROWS:
        assert original.evaluate(row) == rewritten.evaluate(row), row


class TestNNF:
    def test_pushes_not_onto_comparison(self):
        pred = Not(equals("a", 1))
        assert to_nnf(pred) == Comparison("a", Op.NE, 1)

    def test_not_interval_becomes_disjunction(self):
        pred = Not(Interval("b", 10.0, 20.0))
        nnf = to_nnf(pred)
        assert isinstance(nnf, Or)
        assert_equivalent(pred, nnf)

    def test_not_in_set_kept_as_negative_atom(self):
        pred = Not(InSet("a", (1, 2)))
        assert to_nnf(pred) == pred

    def test_de_morgan_and(self):
        pred = Not(conjunction([equals("a", 1), equals("c", "x")]))
        nnf = to_nnf(pred)
        assert isinstance(nnf, Or)
        assert_equivalent(pred, nnf)

    def test_double_negation(self):
        pred = Not(Not(equals("a", 1)))
        assert to_nnf(pred) == equals("a", 1)

    def test_constants(self):
        assert to_nnf(Not(TRUE)) is FALSE
        assert to_nnf(Not(FALSE)) is TRUE


class TestDNF:
    def test_distributes_and_over_or(self):
        pred = conjunction(
            [
                disjunction([equals("a", 1), equals("a", 2)]),
                disjunction([equals("c", "x"), equals("c", "y")]),
            ]
        )
        dnf = to_dnf(pred)
        assert isinstance(dnf, Or)
        assert len(dnf.operands) == 4
        assert_equivalent(pred, dnf)

    def test_budget_enforced(self):
        big = conjunction(
            [
                disjunction([equals("a", i), equals("a", i + 100)])
                for i in range(12)
            ]
        )
        with pytest.raises(NormalizationError):
            to_dnf(big, max_terms=100)

    def test_true_false_passthrough(self):
        assert to_dnf(TRUE) is TRUE
        assert to_dnf(FALSE) is FALSE

    def test_atom_passthrough(self):
        assert to_dnf(equals("a", 1)) == equals("a", 1)

    def test_and_with_false_collapses(self):
        pred = conjunction([equals("a", 1), disjunction([])])
        assert to_dnf(pred) is FALSE


class TestSimplify:
    def test_contradictory_equalities(self):
        pred = conjunction([equals("a", 1), equals("a", 2)])
        assert simplify(pred) is FALSE

    def test_in_set_intersection(self):
        pred = conjunction([in_set("a", [1, 2, 3]), in_set("a", [2, 3, 4])])
        simplified = simplify(pred)
        assert simplified == in_set("a", [2, 3])

    def test_range_intersection(self):
        pred = conjunction(
            [
                Comparison("b", Op.GE, 10.0),
                Comparison("b", Op.LE, 30.0),
                Comparison("b", Op.GT, 15.0),
            ]
        )
        simplified = simplify(pred)
        assert_equivalent(pred, simplified)
        assert isinstance(simplified, Interval)
        assert simplified.low == 15.0 and not simplified.low_closed
        assert simplified.high == 30.0 and simplified.high_closed

    def test_empty_range_is_false(self):
        pred = conjunction(
            [Comparison("b", Op.GT, 30.0), Comparison("b", Op.LT, 10.0)]
        )
        assert simplify(pred) is FALSE

    def test_pinched_range_becomes_equality(self):
        pred = conjunction(
            [Comparison("b", Op.GE, 10.0), Comparison("b", Op.LE, 10.0)]
        )
        assert simplify(pred) == equals("b", 10.0)

    def test_equality_filtered_by_range(self):
        pred = conjunction([equals("b", 5.0), Comparison("b", Op.GE, 10.0)])
        assert simplify(pred) is FALSE

    def test_equality_with_forbidden_value(self):
        pred = conjunction([equals("a", 1), Comparison("a", Op.NE, 1)])
        assert simplify(pred) is FALSE

    def test_absorption(self):
        a = equals("a", 1)
        pred = disjunction([a, conjunction([a, equals("c", "x")])])
        assert simplify(pred) == a

    def test_duplicate_disjuncts_removed(self):
        pred = Or((equals("a", 1), equals("a", 1)))
        assert simplify(pred) == equals("a", 1)

    def test_preserves_semantics_on_mixed_expression(self):
        pred = disjunction(
            [
                conjunction(
                    [Not(InSet("a", (2, 3))), Comparison("b", Op.LT, 25.0)]
                ),
                conjunction([equals("c", "z"), equals("a", 3)]),
            ]
        )
        assert_equivalent(pred, simplify(pred))

    def test_not_in_set_merged(self):
        pred = conjunction(
            [Not(InSet("a", (1, 2))), Comparison("a", Op.NE, 3)]
        )
        simplified = simplify(pred)
        assert_equivalent(pred, simplified)

    def test_true_result(self):
        assert simplify(disjunction([TRUE, equals("a", 1)])) is TRUE


class TestAllowedValues:
    def test_equality(self):
        assert allowed_values(equals("a", 1), "a") == {1}

    def test_in_set(self):
        assert allowed_values(in_set("a", [1, 2]), "a") == {1, 2}

    def test_unconstrained(self):
        assert allowed_values(equals("c", "x"), "a") is None

    def test_union_over_disjuncts(self):
        pred = disjunction([equals("a", 1), in_set("a", [2, 3])])
        assert allowed_values(pred, "a") == {1, 2, 3}

    def test_disjunct_without_constraint_gives_none(self):
        pred = disjunction([equals("a", 1), equals("c", "x")])
        assert allowed_values(pred, "a") is None

    def test_false_gives_empty(self):
        assert allowed_values(FALSE, "a") == set()

    def test_conjunction_restriction_with_transitive_example(self):
        # The paper's transitivity example: age IN ('old', 'middle-aged').
        pred = conjunction(
            [in_set("age", ["old", "middle-aged"]), equals("c", "x")]
        )
        assert allowed_values(pred, "age") == {"old", "middle-aged"}
