"""Unit tests for the predicate algebra."""

import pytest

from repro.core.predicates import (
    FALSE,
    TRUE,
    And,
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    atom_count,
    conjunction,
    disjunct_count,
    disjunction,
    equals,
    in_set,
    negate,
)
from repro.exceptions import PredicateError

ROW = {"age": 30, "income": 50_000.0, "city": "paris"}


class TestComparison:
    def test_equality(self):
        assert equals("age", 30).evaluate(ROW)
        assert not equals("age", 31).evaluate(ROW)

    def test_string_equality(self):
        assert equals("city", "paris").evaluate(ROW)
        assert not equals("city", "rome").evaluate(ROW)

    @pytest.mark.parametrize(
        "op,value,expected",
        [
            (Op.LT, 31, True),
            (Op.LT, 30, False),
            (Op.LE, 30, True),
            (Op.GT, 29, True),
            (Op.GT, 30, False),
            (Op.GE, 30, True),
            (Op.NE, 30, False),
            (Op.NE, 31, True),
        ],
    )
    def test_operators(self, op, value, expected):
        assert Comparison("age", op, value).evaluate(ROW) is expected

    def test_missing_column_raises(self):
        with pytest.raises(PredicateError):
            equals("missing", 1).evaluate(ROW)

    def test_ordering_mixed_types_raises(self):
        with pytest.raises(PredicateError):
            Comparison("city", Op.LT, 5).evaluate(ROW)

    def test_rejects_bool_constant(self):
        with pytest.raises(PredicateError):
            Comparison("age", Op.EQ, True)

    def test_rejects_empty_column(self):
        with pytest.raises(PredicateError):
            Comparison("", Op.EQ, 1)

    def test_columns(self):
        assert equals("age", 30).columns() == frozenset({"age"})

    def test_negated_op_roundtrip(self):
        for op in Op:
            assert op.negated.negated is op

    def test_flipped_op(self):
        assert Op.LT.flipped is Op.GT
        assert Op.LE.flipped is Op.GE
        assert Op.EQ.flipped is Op.EQ


class TestInSet:
    def test_membership(self):
        pred = InSet("age", (30, 40))
        assert pred.evaluate(ROW)
        assert not InSet("age", (31, 40)).evaluate(ROW)

    def test_values_sorted_and_deduplicated(self):
        assert InSet("age", (40, 30, 40)).values == (30, 40)

    def test_empty_rejected(self):
        with pytest.raises(PredicateError):
            InSet("age", ())

    def test_in_set_helper_singleton_is_equality(self):
        assert in_set("age", [30]) == equals("age", 30)

    def test_in_set_helper_empty_is_false(self):
        assert in_set("age", []) is FALSE

    def test_equal_sets_are_equal_objects(self):
        assert InSet("age", (1, 2)) == InSet("age", (2, 1))


class TestInterval:
    def test_closed_interval(self):
        pred = Interval("age", 20, 30)
        assert pred.evaluate(ROW)
        assert not Interval("age", 20, 29).evaluate(ROW)

    def test_open_bounds(self):
        assert not Interval("age", 30, 40, low_closed=False).evaluate(ROW)
        assert Interval("age", 30, 40, low_closed=True).evaluate(ROW)
        assert not Interval("age", 20, 30, high_closed=False).evaluate(ROW)

    def test_half_bounded(self):
        assert Interval("age", low=25, high=None).evaluate(ROW)
        assert Interval("age", low=None, high=35).evaluate(ROW)

    def test_unbounded_both_sides_rejected(self):
        with pytest.raises(PredicateError):
            Interval("age", None, None)

    def test_empty_interval_rejected(self):
        with pytest.raises(PredicateError):
            Interval("age", 30, 20)


class TestConnectives:
    def test_and_or_not(self):
        pred = (equals("city", "paris") & Comparison("age", Op.GE, 18)) | FALSE
        assert pred.evaluate(ROW)
        assert not negate(pred).evaluate(ROW)

    def test_and_requires_two_operands(self):
        with pytest.raises(PredicateError):
            And((TRUE,))

    def test_or_requires_two_operands(self):
        with pytest.raises(PredicateError):
            Or((TRUE,))

    def test_not_evaluate(self):
        assert Not(equals("age", 31)).evaluate(ROW)

    def test_columns_union(self):
        pred = conjunction([equals("age", 30), equals("city", "paris")])
        assert pred.columns() == frozenset({"age", "city"})


class TestSmartConstructors:
    def test_conjunction_flattens(self):
        inner = conjunction([equals("age", 30), equals("city", "paris")])
        outer = conjunction([inner, equals("income", 50_000.0)])
        assert isinstance(outer, And)
        assert len(outer.operands) == 3

    def test_conjunction_drops_true(self):
        assert conjunction([TRUE, equals("age", 30)]) == equals("age", 30)

    def test_conjunction_false_collapses(self):
        assert conjunction([equals("age", 30), FALSE]) is FALSE

    def test_conjunction_empty_is_true(self):
        assert conjunction([]) is TRUE

    def test_conjunction_deduplicates(self):
        pred = conjunction([equals("age", 30), equals("age", 30)])
        assert pred == equals("age", 30)

    def test_disjunction_flattens(self):
        inner = disjunction([equals("age", 30), equals("age", 31)])
        outer = disjunction([inner, equals("age", 32)])
        assert isinstance(outer, Or)
        assert len(outer.operands) == 3

    def test_disjunction_drops_false(self):
        assert disjunction([FALSE, equals("age", 30)]) == equals("age", 30)

    def test_disjunction_true_collapses(self):
        assert disjunction([equals("age", 30), TRUE]) is TRUE

    def test_disjunction_empty_is_false(self):
        assert disjunction([]) is FALSE


class TestNegate:
    def test_negate_constants(self):
        assert negate(TRUE) is FALSE
        assert negate(FALSE) is TRUE

    def test_negate_comparison(self):
        assert negate(equals("age", 30)) == Comparison("age", Op.NE, 30)

    def test_double_negation(self):
        pred = Not(InSet("age", (1, 2)))
        assert negate(pred) == InSet("age", (1, 2))

    def test_de_morgan(self):
        pred = conjunction([equals("age", 30), equals("city", "paris")])
        negated = negate(pred)
        assert isinstance(negated, Or)
        for row in (ROW, {**ROW, "age": 31}, {**ROW, "city": "rome"}):
            assert negated.evaluate(row) == (not pred.evaluate(row))


class TestMetrics:
    def test_atom_count(self):
        pred = disjunction(
            [
                conjunction([equals("age", 1), equals("age", 2)]),
                equals("city", "x"),
            ]
        )
        assert atom_count(pred) == 3

    def test_disjunct_count(self):
        pred = disjunction([equals("age", 1), equals("age", 2)])
        assert disjunct_count(pred) == 2
        assert disjunct_count(equals("age", 1)) == 1
