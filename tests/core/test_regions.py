"""Unit tests for dimensions, attribute spaces, and regions."""

import pytest

from repro.core.predicates import (
    TRUE,
    Comparison,
    InSet,
    Interval,
    Op,
    Or,
    equals,
)
from repro.core.regions import (
    AttributeSpace,
    BinnedDimension,
    CategoricalDimension,
    OrdinalDimension,
    Region,
    coarsen_regions,
    merge_regions,
    regions_to_predicate,
)
from repro.exceptions import RegionError, SchemaError


class TestCategoricalDimension:
    def test_basics(self):
        dim = CategoricalDimension("color", ("blue", "green", "red"))
        assert dim.size == 3
        assert not dim.ordered
        assert dim.member_for_value("green") == 1
        assert dim.member_label(2) == "red"

    def test_unknown_value(self):
        dim = CategoricalDimension("color", ("blue",))
        with pytest.raises(RegionError):
            dim.member_for_value("red")

    def test_predicate_subset(self):
        dim = CategoricalDimension("color", ("blue", "green", "red"))
        pred = dim.predicate_for([0, 2])
        assert pred == InSet("color", ("blue", "red"))

    def test_predicate_singleton(self):
        dim = CategoricalDimension("color", ("blue", "green", "red"))
        assert dim.predicate_for([1]) == equals("color", "green")

    def test_predicate_full_domain_is_true(self):
        dim = CategoricalDimension("color", ("blue", "green"))
        assert dim.predicate_for([0, 1]) is TRUE

    def test_duplicate_values_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalDimension("color", ("blue", "blue"))


class TestOrdinalDimension:
    def test_requires_sorted(self):
        with pytest.raises(SchemaError):
            OrdinalDimension("size", (3, 1, 2))

    def test_contiguous_run_becomes_interval(self):
        dim = OrdinalDimension("size", (1, 2, 3, 4, 5))
        pred = dim.predicate_for([1, 2, 3])
        assert pred == Interval("size", 2, 4)

    def test_noncontiguous_becomes_disjunction(self):
        dim = OrdinalDimension("size", (1, 2, 3, 4, 5))
        pred = dim.predicate_for([0, 2, 3])
        assert isinstance(pred, Or)
        assert pred.evaluate({"size": 1})
        assert not pred.evaluate({"size": 2})
        assert pred.evaluate({"size": 3})
        assert pred.evaluate({"size": 4})
        assert not pred.evaluate({"size": 5})


class TestBinnedDimension:
    def test_member_for_value(self):
        dim = BinnedDimension("w", (10.0, 20.0))
        assert dim.member_for_value(5.0) == 0
        assert dim.member_for_value(10.0) == 1
        assert dim.member_for_value(19.9) == 1
        assert dim.member_for_value(25.0) == 2

    def test_bounds_unbounded_outer(self):
        dim = BinnedDimension("w", (10.0, 20.0))
        assert dim.bounds(0) == (None, 10.0)
        assert dim.bounds(1) == (10.0, 20.0)
        assert dim.bounds(2) == (20.0, None)

    def test_bounds_with_outer_limits(self):
        dim = BinnedDimension("w", (10.0,), low=0.0, high=50.0)
        assert dim.bounds(0) == (0.0, 10.0)
        assert dim.bounds(1) == (10.0, 50.0)

    def test_predicate_run(self):
        dim = BinnedDimension("w", (10.0, 20.0, 30.0))
        pred = dim.predicate_for([1, 2])
        assert pred == Interval("w", 10.0, 30.0, high_closed=False)

    def test_predicate_outer_bins_one_sided(self):
        dim = BinnedDimension("w", (10.0,))
        low = dim.predicate_for([0])
        high = dim.predicate_for([1])
        assert low == Comparison("w", Op.LT, 10.0)
        assert high == Comparison("w", Op.GE, 10.0)

    def test_predicate_matches_membership(self):
        dim = BinnedDimension("w", (10.0, 20.0, 30.0))
        for members in ([0], [1], [2, 3], [0, 2]):
            pred = dim.predicate_for(members)
            for value in (5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0):
                expected = dim.member_for_value(value) in members
                assert pred.evaluate({"w": value}) == expected, (
                    members,
                    value,
                )

    def test_representative_inside_bin(self):
        dim = BinnedDimension("w", (10.0, 20.0))
        assert dim.bounds(1) == (10.0, 20.0)
        assert 10.0 <= dim.representative(1) < 20.0
        assert dim.member_for_value(dim.representative(0)) == 0
        assert dim.member_for_value(dim.representative(2)) == 2

    def test_unsorted_cuts_rejected(self):
        with pytest.raises(SchemaError):
            BinnedDimension("w", (20.0, 10.0))


class TestAttributeSpace:
    def test_cell_count(self, small_space):
        assert small_space.cell_count() == 3 * 4 * 3

    def test_point_for_row(self, small_space):
        point = small_space.point_for_row(
            {"color": "red", "size": 2, "weight": 12.0}
        )
        assert point == (2, 1, 1)

    def test_iter_cells_guard(self, small_space):
        with pytest.raises(RegionError):
            list(small_space.iter_cells(limit=5))

    def test_duplicate_dimension_names_rejected(self):
        dim = CategoricalDimension("x", ("a",))
        with pytest.raises(SchemaError):
            AttributeSpace((dim, dim))

    def test_dimension_lookup(self, small_space):
        assert small_space.dimension("size").name == "size"
        with pytest.raises(SchemaError):
            small_space.dimension("nope")


class TestRegion:
    def test_full_region(self, small_space):
        region = Region.full(small_space)
        assert region.cell_count() == small_space.cell_count()
        assert region.to_predicate(small_space) is TRUE

    def test_contains(self, small_space):
        region = Region(((0, 1), (0,), (0, 1, 2)))
        assert region.contains((0, 0, 2))
        assert not region.contains((2, 0, 0))

    def test_split(self, small_space):
        region = Region.full(small_space)
        left, right = region.split(1, [0, 1])
        assert left.members[1] == (0, 1)
        assert right.members[1] == (2, 3)
        assert left.cell_count() + right.cell_count() == region.cell_count()

    def test_split_empty_side_rejected(self, small_space):
        region = Region.full(small_space)
        with pytest.raises(RegionError):
            region.split(0, [0, 1, 2])

    def test_empty_dimension_rejected(self):
        with pytest.raises(RegionError):
            Region(((),))

    def test_to_predicate_restricts_only_partial_dims(self, small_space):
        region = Region(((0, 1, 2), (1, 2), (0, 1, 2)))
        pred = region.to_predicate(small_space)
        assert pred == Interval("size", 2, 3)

    def test_predicate_matches_cells(self, small_space):
        region = Region(((0, 2), (0, 1), (1,)))
        pred = region.to_predicate(small_space)
        values = {
            "color": ["blue", "green", "red"],
            "size": [1, 2, 3, 4],
            "weight": [5.0, 15.0, 25.0],
        }
        for ci, color in enumerate(values["color"]):
            for si, size in enumerate(values["size"]):
                for wi, weight in enumerate(values["weight"]):
                    row = {"color": color, "size": size, "weight": weight}
                    assert pred.evaluate(row) == region.contains(
                        (ci, si, wi)
                    ), row

    def test_merged_with_one_axis(self):
        a = Region(((0,), (0, 1)))
        b = Region(((1,), (0, 1)))
        merged = a.merged_with(b)
        assert merged == Region(((0, 1), (0, 1)))

    def test_merged_with_two_axes_fails(self):
        a = Region(((0,), (0,)))
        b = Region(((1,), (1,)))
        assert a.merged_with(b) is None

    def test_describe(self, small_space):
        region = Region(((0, 1), (0, 1, 2, 3), (2,)))
        text = region.describe(small_space)
        assert "color" in text and "weight" in text and "size" not in text


class TestMergeRegions:
    def test_merges_grid_back_to_full(self):
        quadrants = [
            Region(((0,), (0,))),
            Region(((0,), (1,))),
            Region(((1,), (0,))),
            Region(((1,), (1,))),
        ]
        merged = merge_regions(quadrants)
        assert len(merged) == 1
        assert merged[0] == Region(((0, 1), (0, 1)))

    def test_preserves_cells(self):
        regions = [
            Region(((0,), (0, 1))),
            Region(((1,), (0,))),
        ]
        merged = merge_regions(regions)
        cells_before = {
            cell for region in regions for cell in region.iter_cells()
        }
        cells_after = {
            cell for region in merged for cell in region.iter_cells()
        }
        assert cells_before == cells_after


class TestCoarsenRegions:
    def test_respects_budget(self):
        regions = [Region(((i,), (i,))) for i in range(6)]
        coarse = coarsen_regions(regions, 2)
        assert len(coarse) <= 2

    def test_covers_superset(self):
        regions = [Region(((i,), (0,))) for i in range(5)]
        coarse = coarsen_regions(regions, 2)
        before = {
            cell for region in regions for cell in region.iter_cells()
        }
        after = {
            cell for region in coarse for cell in region.iter_cells()
        }
        assert before <= after

    def test_no_op_under_budget(self):
        regions = [Region(((0,), (0,)))]
        assert coarsen_regions(regions, 5) == regions

    def test_rejects_zero_budget(self):
        with pytest.raises(RegionError):
            coarsen_regions([Region(((0,), (0,)))], 0)


class TestRegionsToPredicate:
    def test_disjunction_shape(self, small_space):
        regions = [
            Region(((0,), (0, 1, 2, 3), (0, 1, 2))),
            Region(((1,), (0, 1, 2, 3), (0, 1, 2))),
        ]
        pred = regions_to_predicate(regions, small_space)
        assert isinstance(pred, (Or, InSet))

    def test_empty_regions_is_false(self, small_space):
        from repro.core.predicates import FALSE

        assert regions_to_predicate([], small_space) is FALSE
