"""Tests for the real-valued-prediction extension (regression trees)."""

import numpy as np
import pytest

from repro.core.catalog import ModelCatalog
from repro.core.optimizer import MiningQuery
from repro.core.regression_envelope import (
    PredictionBetween,
    register_regression_model,
    regression_range_envelope,
)
from repro.exceptions import EnvelopeError, RewriteError
from repro.mining.regression_tree import (
    RegressionTreeLearner,
    RegressionTreeModel,
)
from repro.sql.database import Database, load_table
from repro.sql.miningext import PredictionJoinExecutor


@pytest.fixture(scope="module")
def house_rows():
    rng = np.random.default_rng(17)
    rows = []
    for _ in range(600):
        sqm = float(rng.uniform(30, 200))
        rooms = int(rng.integers(1, 7))
        district = str(rng.choice(["north", "center", "south"]))
        base = 2000 * sqm + 15_000 * rooms
        if district == "center":
            base *= 1.8
        price = float(base + rng.normal(0, 10_000))
        rows.append(
            {
                "sqm": round(sqm, 1),
                "rooms": rooms,
                "district": district,
                "price": round(price, 2),
            }
        )
    return rows


@pytest.fixture(scope="module")
def price_model(house_rows):
    return RegressionTreeLearner(
        ("sqm", "rooms", "district"), "price", max_depth=7, name="price_model"
    ).fit(house_rows)


class TestLearner:
    def test_reasonable_fit(self, price_model, house_rows):
        errors = [
            abs(price_model.predict(r) - r["price"]) for r in house_rows
        ]
        prices = [r["price"] for r in house_rows]
        spread = max(prices) - min(prices)
        assert sum(errors) / len(errors) < spread * 0.1

    def test_piecewise_constant(self, price_model):
        assert price_model.leaf_count() == len(
            set(price_model.class_labels)
        ) or price_model.leaf_count() >= len(price_model.class_labels)

    def test_value_range(self, price_model, house_rows):
        low, high = price_model.value_range()
        assert low < high

    def test_rejects_string_targets(self):
        with pytest.raises(Exception):
            RegressionTreeLearner(("a",), "label").fit(
                [{"a": 1, "label": "x"}]
            )

    def test_categorical_split_supported(self, price_model, house_rows):
        # The district column nearly doubles prices; deep trees should
        # exploit it somewhere.
        center = [r for r in house_rows if r["district"] == "center"]
        other = [r for r in house_rows if r["district"] != "center"]

        def mean(rs):
            return sum(price_model.predict(r) for r in rs) / len(rs)

        assert mean(center) > mean(other)


class TestRangeEnvelope:
    def test_exactness(self, price_model, house_rows):
        low, high = 200_000.0, 400_000.0
        envelope = regression_range_envelope(price_model, low, high)
        assert envelope.exact
        for row in house_rows:
            predicted = price_model.predict(row)
            assert envelope.predicate.evaluate(row) == (
                low <= predicted <= high
            )

    def test_one_sided(self, price_model, house_rows):
        envelope = regression_range_envelope(price_model, None, 150_000.0)
        for row in house_rows:
            assert envelope.predicate.evaluate(row) == (
                price_model.predict(row) <= 150_000.0
            )

    def test_empty_range_is_false(self, price_model):
        low, high = price_model.value_range()
        envelope = regression_range_envelope(
            price_model, high + 1e9, high + 2e9
        )
        assert envelope.is_false

    def test_unbounded_rejected(self, price_model):
        with pytest.raises(EnvelopeError):
            regression_range_envelope(price_model, None, None)


class TestPredictionBetween:
    def test_pipeline_equivalence(self, price_model, house_rows):
        catalog = ModelCatalog()
        register_regression_model(catalog, price_model)
        db = Database()
        load_table(
            db,
            "houses",
            [
                {c: r[c] for c in ("sqm", "rooms", "district")}
                for r in house_rows
            ],
        )
        executor = PredictionJoinExecutor(db, catalog)
        query = MiningQuery(
            "houses",
            mining_predicates=(
                PredictionBetween("price_model", 250_000.0, 450_000.0),
            ),
        )
        optimized = executor.execute_optimized(query)
        naive = executor.execute_naive(query)
        assert optimized.rows_returned == naive.rows_returned
        assert optimized.rows_fetched <= naive.rows_fetched
        db.close()

    def test_validation(self):
        with pytest.raises(RewriteError):
            PredictionBetween("m")
        with pytest.raises(RewriteError):
            PredictionBetween("m", 10.0, 5.0)

    def test_describe(self):
        predicate = PredictionBetween("m", 1.0, None)
        assert "1.0" in predicate.describe()

    def test_interchange_round_trip(self, price_model, house_rows):
        from repro.mining.interchange import model_from_dict

        clone = model_from_dict(price_model.to_dict())
        assert isinstance(clone, RegressionTreeModel)
        for row in house_rows[:50]:
            assert clone.predict(row) == price_model.predict(row)
