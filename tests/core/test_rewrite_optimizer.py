"""Unit tests for mining-predicate rewriting and the Section 4.2 optimizer."""

import pytest

from repro.core.catalog import ModelCatalog
from repro.core.optimizer import (
    MiningQuery,
    execute_reference,
    optimize,
)
from repro.core.predicates import (
    FALSE,
    TruePredicate,
    equals,
    in_set,
)
from repro.core.rewrite import (
    PredictionEquals,
    PredictionIn,
    PredictionJoinColumn,
    PredictionJoinPrediction,
    infer_mining_predicates,
)
from repro.exceptions import CatalogError, RewriteError
from repro.mining.decision_tree import DecisionTreeLearner

from tests.conftest import CUSTOMER_FEATURES, make_customer_rows


@pytest.fixture(scope="module")
def rows():
    return make_customer_rows(300, seed=13)


@pytest.fixture(scope="module")
def catalog(rows):
    catalog = ModelCatalog()
    catalog.register(
        DecisionTreeLearner(
            CUSTOMER_FEATURES, "risk", max_depth=6, name="tree_a"
        ).fit(rows)
    )
    catalog.register(
        DecisionTreeLearner(
            CUSTOMER_FEATURES, "risk", max_depth=3, name="tree_b"
        ).fit(rows)
    )
    return catalog


class TestEnvelopeComposition:
    def test_equals_envelope_is_atomic_lookup(self, catalog):
        predicate = PredictionEquals("tree_a", "low")
        envelope = predicate.envelope(catalog)
        assert envelope == catalog.envelope("tree_a", "low").predicate

    def test_unknown_label_is_false(self, catalog):
        assert PredictionEquals("tree_a", "nope").envelope(catalog) is FALSE

    def test_in_envelope_is_disjunction(self, catalog, rows):
        predicate = PredictionIn("tree_a", ("low", "high"))
        envelope = predicate.envelope(catalog)
        model = catalog.model("tree_a")
        for row in rows:
            if model.predict(row) in ("low", "high"):
                assert envelope.evaluate(row)

    def test_in_requires_labels(self):
        with pytest.raises(RewriteError):
            PredictionIn("tree_a", ())

    def test_join_identical_models_is_tautology(self, catalog):
        predicate = PredictionJoinPrediction("tree_a", "tree_a")
        assert isinstance(predicate.envelope(catalog), TruePredicate)

    def test_join_envelope_covers_agreements(self, catalog, rows):
        predicate = PredictionJoinPrediction("tree_a", "tree_b")
        envelope = predicate.envelope(catalog)
        a = catalog.model("tree_a")
        b = catalog.model("tree_b")
        for row in rows:
            if a.predict(row) == b.predict(row):
                assert envelope.evaluate(row)

    def test_join_column_envelope(self, catalog, rows):
        predicate = PredictionJoinColumn("tree_a", "risk")
        envelope = predicate.envelope(catalog)
        model = catalog.model("tree_a")
        for row in rows:
            if model.predict(row) == row["risk"]:
                assert envelope.evaluate(row)

    def test_join_column_transitivity_restricts_labels(self, catalog):
        predicate = PredictionJoinColumn("tree_a", "risk")
        relational = in_set("risk", ["low"])
        labels = predicate.restricted_labels(catalog, relational)
        assert labels == ("low",)


class TestInference:
    def test_join_plus_equals_infers_equals(self):
        predicates = [
            PredictionJoinPrediction("m1", "m2"),
            PredictionEquals("m2", "low"),
        ]
        inferred = infer_mining_predicates(predicates)
        assert PredictionEquals("m1", "low") in inferred

    def test_join_plus_in_infers_in(self):
        predicates = [
            PredictionJoinPrediction("m1", "m2"),
            PredictionIn("m1", ("a", "b")),
        ]
        inferred = infer_mining_predicates(predicates)
        assert PredictionIn("m2", ("a", "b")) in inferred

    def test_no_inference_without_joins(self):
        assert infer_mining_predicates([PredictionEquals("m", "x")]) == []


class TestOptimize:
    def test_injects_envelope(self, catalog):
        query = MiningQuery(
            "t", mining_predicates=(PredictionEquals("tree_a", "high"),)
        )
        optimized = optimize(query, catalog)
        assert not isinstance(optimized.pushable_predicate, TruePredicate)
        assert len(optimized.injections) == 1
        assert not optimized.injections[0].thresholded

    def test_pushable_implied_by_semantics(self, catalog, rows):
        query = MiningQuery(
            "t",
            relational_predicate=equals("gender", "female"),
            mining_predicates=(PredictionEquals("tree_a", "high"),),
        )
        optimized = optimize(query, catalog)
        for row in rows:
            if query.evaluate(row, catalog):
                assert optimized.evaluate_pushable(row)

    def test_constant_false_for_unknown_label(self, catalog):
        query = MiningQuery(
            "t", mining_predicates=(PredictionEquals("tree_a", "nope"),)
        )
        optimized = optimize(query, catalog)
        assert optimized.constant_false

    def test_threshold_drops_complex_envelope(self, catalog):
        query = MiningQuery(
            "t", mining_predicates=(PredictionEquals("tree_a", "medium"),)
        )
        optimized = optimize(query, catalog, max_disjuncts=1)
        assert optimized.injections[0].thresholded
        assert any("thresholded" in note for note in optimized.notes)

    def test_inference_loop_records_predicates(self, catalog):
        query = MiningQuery(
            "t",
            mining_predicates=(
                PredictionJoinPrediction("tree_a", "tree_b"),
                PredictionEquals("tree_b", "low"),
            ),
        )
        optimized = optimize(query, catalog)
        assert PredictionEquals("tree_a", "low") in optimized.inferred_predicates

    def test_reference_execution(self, catalog, rows):
        query = MiningQuery(
            "t", mining_predicates=(PredictionEquals("tree_a", "low"),)
        )
        expected = [
            row
            for row in rows
            if catalog.model("tree_a").predict(row) == "low"
        ]
        assert execute_reference(query, rows, catalog) == expected

    def test_invalid_max_disjuncts(self, catalog):
        query = MiningQuery("t")
        with pytest.raises(RewriteError):
            optimize(query, catalog, max_disjuncts=0)

    def test_optimize_seconds_recorded(self, catalog):
        query = MiningQuery(
            "t", mining_predicates=(PredictionEquals("tree_a", "low"),)
        )
        optimized = optimize(query, catalog)
        assert optimized.optimize_seconds >= 0


class TestCatalog:
    def test_lookup_unknown_model(self, catalog):
        with pytest.raises(CatalogError):
            catalog.envelope("missing", "x")

    def test_lookup_unknown_label(self, catalog):
        with pytest.raises(CatalogError):
            catalog.envelope("tree_a", "nope")

    def test_reregistration_bumps_version(self, rows):
        catalog = ModelCatalog()
        model = DecisionTreeLearner(
            CUSTOMER_FEATURES, "risk", name="v"
        ).fit(rows)
        first = catalog.register(model)
        second = catalog.register(model)
        assert first.version == 1
        assert second.version == 2

    def test_class_labels(self, catalog):
        assert set(catalog.class_labels("tree_a")) <= {
            "low",
            "medium",
            "high",
        }

    def test_model_names(self, catalog):
        assert catalog.model_names() == ["tree_a", "tree_b"]
