"""Unit tests for rule-set envelope extraction (Section 3.1)."""

import pytest

from repro.core.predicates import Comparison, Op, equals
from repro.core.rule_envelope import rule_envelope, rule_envelopes
from repro.mining.rules import Rule, RuleSetModel


@pytest.fixture()
def overlapping_rules():
    """An ordered rule list whose bodies overlap across classes."""
    return RuleSetModel(
        "rules",
        "label",
        ("age", "city"),
        (
            Rule((Comparison("age", Op.LE, 30),), "young"),
            Rule((equals("city", "paris"),), "parisian"),
            Rule((Comparison("age", Op.GT, 60),), "senior"),
        ),
        default_label="other",
    )


ROWS = [
    {"age": 25, "city": "paris"},
    {"age": 25, "city": "rome"},
    {"age": 45, "city": "paris"},
    {"age": 70, "city": "rome"},
    {"age": 70, "city": "paris"},
    {"age": 45, "city": "rome"},
]


class TestPlainEnvelopes:
    def test_upper_envelope_contract(self, overlapping_rules):
        envelopes = rule_envelopes(overlapping_rules)
        for row in ROWS:
            predicted = overlapping_rules.predict(row)
            assert envelopes[predicted].predicate.evaluate(row), (
                predicted,
                row,
            )

    def test_envelope_may_be_loose(self, overlapping_rules):
        # Age 25 in paris fires the 'young' rule first, but the plain
        # 'parisian' envelope still accepts the row (overlap, Section 3.1).
        envelope = rule_envelope(overlapping_rules, "parisian")
        row = {"age": 25, "city": "paris"}
        assert overlapping_rules.predict(row) == "young"
        assert envelope.predicate.evaluate(row)
        assert not envelope.exact

    def test_default_class_envelope_covers_fallthrough(
        self, overlapping_rules
    ):
        envelope = rule_envelope(overlapping_rules, "other")
        row = {"age": 45, "city": "rome"}
        assert overlapping_rules.predict(row) == "other"
        assert envelope.predicate.evaluate(row)


class TestTightenedEnvelopes:
    def test_tightened_envelopes_are_exact(self, overlapping_rules):
        envelopes = rule_envelopes(overlapping_rules, tighten=True)
        for row in ROWS:
            predicted = overlapping_rules.predict(row)
            for label, envelope in envelopes.items():
                assert envelope.predicate.evaluate(row) == (
                    predicted == label
                ), (label, row)

    def test_tightened_flagged_exact(self, overlapping_rules):
        envelope = rule_envelope(overlapping_rules, "parisian", tighten=True)
        assert envelope.exact


class TestLearnedRules:
    def test_upper_envelope_on_training_rows(
        self, customer_rules, customer_rows
    ):
        envelopes = rule_envelopes(customer_rules)
        for row in customer_rows:
            predicted = customer_rules.predict(row)
            assert envelopes[predicted].predicate.evaluate(row)

    def test_tightened_partition_on_training_rows(
        self, customer_rules, customer_rows
    ):
        envelopes = rule_envelopes(customer_rules, tighten=True)
        for row in customer_rows:
            predicted = customer_rules.predict(row)
            hits = [
                label
                for label, e in envelopes.items()
                if e.predicate.evaluate(row)
            ]
            assert hits == [predicted]
