"""Unit tests for score tables and the quadratic-range helper."""

import math

import numpy as np
import pytest

from repro.core.regions import AttributeSpace, CategoricalDimension
from repro.core.score_model import ScoreTable, quadratic_range
from repro.core.derive import score_table_from_naive_bayes
from repro.exceptions import EnvelopeError


@pytest.fixture()
def tiny_table():
    space = AttributeSpace(
        (
            CategoricalDimension("a", ("x", "y")),
            CategoricalDimension("b", ("p", "q", "r")),
        )
    )
    lo = [
        np.array([[0.0, 1.0], [2.0, -1.0]]),
        np.array([[0.5, 0.0, -0.5], [0.0, 0.0, 1.0]]),
    ]
    hi = [table.copy() for table in lo]
    return ScoreTable(space, ("c0", "c1"), np.array([0.1, -0.1]), lo, hi)


class TestScoreTable:
    def test_shapes_validated(self, tiny_table):
        space = tiny_table.space
        with pytest.raises(EnvelopeError):
            ScoreTable(
                space,
                ("c0", "c1"),
                np.zeros(2),
                [np.zeros((2, 2))],  # missing a dimension
                [np.zeros((2, 2))],
            )

    def test_lo_above_hi_rejected(self, tiny_table):
        space = tiny_table.space
        lo = [np.ones((2, 2)), np.zeros((2, 3))]
        hi = [np.zeros((2, 2)), np.zeros((2, 3))]
        with pytest.raises(EnvelopeError):
            ScoreTable(space, ("c0", "c1"), np.zeros(2), lo, hi)

    def test_is_exact(self, tiny_table):
        assert tiny_table.is_exact()

    def test_cell_scores(self, tiny_table):
        scores = tiny_table.cell_scores((1, 2))
        assert scores == pytest.approx([0.1 + 1.0 - 0.5, -0.1 - 1.0 + 1.0])

    def test_predict_cell(self, tiny_table):
        assert tiny_table.predict_cell((1, 2)) == 0
        assert tiny_table.predict_cell((0, 2)) == 1

    def test_predict_cell_tie_break(self):
        space = AttributeSpace((CategoricalDimension("a", ("x",)),))
        lo = [np.zeros((2, 1))]
        table = ScoreTable(
            space,
            ("c0", "c1"),
            np.zeros(2),
            lo,
            [t.copy() for t in lo],
            tie_ranks=(1, 0),
        )
        # Scores tie; class c1 has the better (smaller) tie rank.
        assert table.predict_cell((0,)) == 1

    def test_class_index(self, tiny_table):
        assert tiny_table.class_index("c1") == 1
        with pytest.raises(EnvelopeError):
            tiny_table.class_index("nope")

    def test_diff_bounds_fallback(self, tiny_table):
        diff_lo, diff_hi = tiny_table.diff_bounds(0)
        # Exact table: diff bounds collapse to the true differences.
        assert diff_lo[0, 1, 0] == pytest.approx(0.0 - 2.0)
        assert diff_hi[0, 1, 0] == pytest.approx(0.0 - 2.0)
        assert diff_lo[1, 0, 1] == pytest.approx(-1.0 - 1.0)

    def test_diff_tables_validated(self, tiny_table):
        space = tiny_table.space
        with pytest.raises(EnvelopeError):
            ScoreTable(
                space,
                ("c0", "c1"),
                np.zeros(2),
                tiny_table.lo,
                tiny_table.hi,
                diff_lo=[np.zeros((2, 2, 2)), np.zeros((2, 2, 3))],
                diff_hi=None,  # must come together
            )

    def test_two_class_ratio_preserves_prediction(self, tiny_table):
        for target in (0, 1):
            ratio = tiny_table.two_class_ratio(target)
            for cell in tiny_table.space.iter_cells():
                original = tiny_table.predict_cell(cell)
                transformed = ratio.predict_cell(cell)
                assert (original == target) == (transformed == target)

    def test_two_class_ratio_requires_two_classes(self):
        space = AttributeSpace((CategoricalDimension("a", ("x",)),))
        lo = [np.zeros((3, 1))]
        table = ScoreTable(
            space, ("c0", "c1", "c2"), np.zeros(3), lo, [t.copy() for t in lo]
        )
        with pytest.raises(EnvelopeError):
            table.two_class_ratio(0)

    def test_interval_table_rejects_cell_scores(self):
        space = AttributeSpace((CategoricalDimension("a", ("x",)),))
        lo = [np.array([[0.0]])]
        hi = [np.array([[1.0]])]
        table = ScoreTable(space, ("c0",), np.zeros(1), lo, hi)
        assert not table.is_exact()
        with pytest.raises(EnvelopeError):
            table.cell_scores((0,))


class TestScoreTableFromNaiveBayes(object):
    def test_matches_model_predictions(self, paper_table1_nb):
        table = score_table_from_naive_bayes(paper_table1_nb)
        for cell in paper_table1_nb.space.iter_cells():
            assert table.predict_cell(cell) == paper_table1_nb.predict_cell(
                cell
            )

    def test_tie_ranks_follow_priors(self, paper_table1_nb):
        table = score_table_from_naive_bayes(paper_table1_nb)
        # Priors: c2 (0.5) > c1 (0.33) > c3 (0.17).
        assert table.tie_ranks[1] < table.tie_ranks[0] < table.tie_ranks[2]


class TestQuadraticRange:
    def test_linear_on_interval(self):
        low, high = quadratic_range(0.0, 2.0, 1.0, 0.0, 3.0)
        assert low == pytest.approx(1.0)
        assert high == pytest.approx(7.0)

    def test_parabola_vertex_inside(self):
        low, high = quadratic_range(1.0, -4.0, 0.0, 0.0, 5.0)
        assert low == pytest.approx(-4.0)  # vertex at x=2
        assert high == pytest.approx(5.0)  # at x=5

    def test_parabola_vertex_outside(self):
        low, high = quadratic_range(1.0, -4.0, 0.0, 3.0, 5.0)
        assert low == pytest.approx(-3.0)  # at x=3
        assert high == pytest.approx(5.0)

    def test_unbounded_left_positive_quadratic(self):
        low, high = quadratic_range(1.0, 0.0, 0.0, None, 1.0)
        assert low == pytest.approx(0.0)  # vertex at 0
        assert high == math.inf

    def test_unbounded_right_negative_quadratic(self):
        low, high = quadratic_range(-1.0, 0.0, 0.0, 0.0, None)
        assert low == -math.inf
        assert high == pytest.approx(0.0)

    def test_unbounded_linear(self):
        low, high = quadratic_range(0.0, 1.0, 0.0, None, 0.0)
        assert low == -math.inf
        assert high == pytest.approx(0.0)
        low, high = quadratic_range(0.0, -1.0, 0.0, None, 0.0)
        assert low == pytest.approx(0.0)
        assert high == math.inf

    def test_constant(self):
        low, high = quadratic_range(0.0, 0.0, 3.5, None, None)
        assert low == pytest.approx(3.5)
        assert high == pytest.approx(3.5)

    def test_brute_force_agreement(self):
        rng = np.random.default_rng(3)
        for _ in range(200):
            a, b, c = rng.uniform(-2, 2, size=3)
            lo_edge, hi_edge = sorted(rng.uniform(-5, 5, size=2))
            xs = np.linspace(lo_edge, hi_edge, 501)
            values = a * xs * xs + b * xs + c
            low, high = quadratic_range(a, b, c, lo_edge, hi_edge)
            assert low <= values.min() + 1e-9
            assert high >= values.max() - 1e-9
