"""Unit tests for decision-tree envelope extraction (Section 3.1)."""

import pytest

from repro.core.tree_envelope import tree_envelope, tree_envelopes
from repro.mining.decision_tree import (
    CategoryTest,
    DecisionTreeModel,
    Internal,
    Leaf,
    NumericTest,
)


@pytest.fixture()
def figure1_tree():
    """The paper's Figure 1 tree:

    lower_bp > 91 ? (age > 63 ? (overweight ? c1 : c2) : c2)
                  : (upper_bp > 130 ? c1 : c2)

    Overweight is modelled as a categorical yes/no test.
    """
    overweight = Internal(
        CategoryTest("overweight", "yes"),
        Leaf("c1", (("c1", 1),)),
        Leaf("c2", (("c2", 1),)),
    )
    age = Internal(
        NumericTest("age", 63.0),
        Leaf("c2", (("c2", 1),)),
        overweight,
    )
    upper = Internal(
        NumericTest("upper_bp", 130.0),
        Leaf("c2", (("c2", 1),)),
        Leaf("c1", (("c1", 1),)),
    )
    root = Internal(NumericTest("lower_bp", 91.0), upper, age)
    return DecisionTreeModel(
        "figure1", "diagnosis",
        ("lower_bp", "upper_bp", "age", "overweight"), root,
    )


ROWS = [
    {"lower_bp": 95, "upper_bp": 120, "age": 70, "overweight": "yes"},
    {"lower_bp": 95, "upper_bp": 120, "age": 70, "overweight": "no"},
    {"lower_bp": 95, "upper_bp": 120, "age": 50, "overweight": "yes"},
    {"lower_bp": 85, "upper_bp": 140, "age": 30, "overweight": "no"},
    {"lower_bp": 85, "upper_bp": 120, "age": 30, "overweight": "no"},
    {"lower_bp": 91, "upper_bp": 130, "age": 63, "overweight": "yes"},
]


class TestFigure1:
    def test_envelopes_are_exact(self, figure1_tree):
        envelopes = tree_envelopes(figure1_tree)
        for row in ROWS:
            predicted = figure1_tree.predict(row)
            for label, envelope in envelopes.items():
                assert envelope.predicate.evaluate(row) == (
                    predicted == label
                ), (label, row)

    def test_envelope_metadata(self, figure1_tree):
        envelope = tree_envelope(figure1_tree, "c1")
        assert envelope.exact
        assert envelope.derivation == "tree-paths"
        assert envelope.model_name == "figure1"
        assert not envelope.is_false

    def test_unused_label_gives_false(self, figure1_tree):
        envelope = tree_envelope(figure1_tree, "c99")
        assert envelope.is_false

    def test_simplification_keeps_exactness(self, figure1_tree):
        raw = tree_envelope(figure1_tree, "c2", simplify_result=False)
        simplified = tree_envelope(figure1_tree, "c2", simplify_result=True)
        for row in ROWS:
            assert raw.predicate.evaluate(row) == simplified.predicate.evaluate(
                row
            )
        assert simplified.n_atoms <= raw.n_atoms


class TestLearnedTrees:
    def test_envelopes_exact_on_training_rows(
        self, customer_tree, customer_rows
    ):
        envelopes = tree_envelopes(customer_tree)
        for row in customer_rows:
            predicted = customer_tree.predict(row)
            for label, envelope in envelopes.items():
                assert envelope.predicate.evaluate(row) == (
                    predicted == label
                )

    def test_partition_property(self, customer_tree, customer_rows):
        """Exactly one class envelope accepts each row."""
        envelopes = tree_envelopes(customer_tree)
        for row in customer_rows:
            hits = sum(
                1 for e in envelopes.values() if e.predicate.evaluate(row)
            )
            assert hits == 1

    def test_envelope_columns_are_feature_columns(self, customer_tree):
        envelopes = tree_envelopes(customer_tree)
        for envelope in envelopes.values():
            if not envelope.is_false:
                assert envelope.predicate.columns() <= set(
                    customer_tree.feature_columns
                )
