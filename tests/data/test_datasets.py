"""Unit tests for dataset specs, generators, and doubling expansion."""

import pytest

from repro.data.expansion import doubled_size, doubling_factor, expand_rows
from repro.data.generators import class_label, generate, generate_all
from repro.data.specs import DATASETS, dataset_spec
from repro.exceptions import SchemaError


class TestSpecs:
    def test_ten_datasets_registered(self):
        assert len(DATASETS) == 10

    def test_table2_shape(self):
        """Class/cluster counts must match the paper's Table 2."""
        expected = {
            "anneal_u": (6, 6),
            "balance_scale": (3, 5),
            "chess": (2, 5),
            "diabetes": (2, 5),
            "hypothyroid": (2, 5),
            "letter": (26, 26),
            "parity5_5": (2, 5),
            "shuttle": (7, 7),
            "vehicle": (4, 5),
            "kdd_cup_99": (23, 23),
        }
        for name, (n_classes, n_clusters) in expected.items():
            spec = dataset_spec(name)
            assert spec.n_classes == n_classes, name
            assert spec.n_clusters == n_clusters, name

    def test_training_sizes_match_paper(self):
        expected = {
            "anneal_u": 598,
            "balance_scale": 416,
            "chess": 2130,
            "diabetes": 512,
            "hypothyroid": 1339,
            "letter": 15000,
            "parity5_5": 100,
            "shuttle": 43500,
            "vehicle": 564,
            "kdd_cup_99": 100_000,
        }
        for name, size in expected.items():
            assert dataset_spec(name).train_size == size, name

    def test_unknown_dataset(self):
        with pytest.raises(SchemaError):
            dataset_spec("nonexistent")

    def test_priors_lengths(self):
        for spec in DATASETS.values():
            if spec.class_priors:
                assert len(spec.class_priors) == spec.n_classes, spec.name


class TestGenerate:
    def test_deterministic(self):
        a = generate("diabetes", train_size=100, seed=3)
        b = generate("diabetes", train_size=100, seed=3)
        assert a.train_rows == b.train_rows

    def test_seed_changes_data(self):
        a = generate("diabetes", train_size=100, seed=3)
        b = generate("diabetes", train_size=100, seed=4)
        assert a.train_rows != b.train_rows

    def test_row_shape(self):
        dataset = generate("anneal_u", train_size=50)
        row = dataset.train_rows[0]
        assert set(row) == set(dataset.feature_columns) | {"label"}

    def test_balance_scale_semantics(self):
        dataset = generate("balance_scale", train_size=300)
        for row in dataset.train_rows:
            left = row["left_weight"] * row["left_distance"]
            right = row["right_weight"] * row["right_distance"]
            expected = "L" if left > right else "R" if right > left else "B"
            assert row["label"] == expected

    def test_parity_semantics(self):
        dataset = generate("parity5_5", train_size=100)
        for row in dataset.train_rows:
            bits = sum(row[f"bit{i}"] for i in range(5))
            assert row["label"] == ("odd" if bits % 2 else "even")

    def test_skew_preserved(self):
        dataset = generate("shuttle", train_size=4000, seed=1)
        labels = [r["label"] for r in dataset.train_rows]
        dominant = labels.count(class_label(0)) / len(labels)
        assert dominant == pytest.approx(0.786, abs=0.05)

    def test_class_labels_property(self):
        dataset = generate("diabetes", train_size=200)
        assert dataset.class_labels == ("class_00", "class_01")

    def test_invalid_size(self):
        with pytest.raises(SchemaError):
            generate("diabetes", train_size=0)

    def test_generate_all_scaled(self):
        datasets = generate_all(
            max_train=50, names=("diabetes", "chess")
        )
        assert [d.name for d in datasets] == ["diabetes", "chess"]
        assert all(len(d.train_rows) <= 50 for d in datasets)

    def test_learnable_classes(self):
        """The replicas must be learnable — otherwise the Section 5
        experiments would measure noise."""
        from repro.mining.metrics import accuracy
        from repro.mining.naive_bayes import NaiveBayesLearner

        dataset = generate("anneal_u", train_size=500, seed=0)
        model = NaiveBayesLearner(
            dataset.feature_columns, dataset.target_column, bins=6
        ).fit(dataset.train_rows)
        assert accuracy(model, dataset.train_rows, "label") > 0.7


class TestExpansion:
    def test_doubling_factor_powers_of_two(self):
        assert doubling_factor(100, 100) == 1
        assert doubling_factor(100, 101) == 2
        assert doubling_factor(100, 401) == 8

    def test_doubled_size(self):
        assert doubled_size(598, 1_000_000) == 598 * 2048
        assert doubled_size(598, 1_000_000) > 1_000_000

    def test_expand_rows_preserves_distribution(self):
        rows = [{"a": i} for i in range(10)]
        expanded = list(expand_rows(rows, 35))
        assert len(expanded) == 40
        assert expanded.count({"a": 3}) == 4

    def test_expand_rows_identity_when_large_enough(self):
        rows = [{"a": i} for i in range(10)]
        assert list(expand_rows(rows, 10)) == rows

    def test_invalid_inputs(self):
        with pytest.raises(SchemaError):
            doubling_factor(0, 10)
        with pytest.raises(SchemaError):
            doubling_factor(10, 0)
