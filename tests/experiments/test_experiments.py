"""Tests for the experiment harness and per-artifact runners (smoke scale)."""

import pytest

from repro.experiments import SMOKE_CONFIG, dataset_for, run_all, train_family
from repro.experiments.ablation import (
    enumeration_comparison,
    two_class_comparison,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import numeric_feature_columns
from repro.experiments.overhead import overhead_rows
from repro.experiments.tables import (
    PAPER_PLAN_CHANGE,
    PAPER_RUNTIME_REDUCTION,
    table2_rows,
    table3_runtime_reduction,
    table4_plan_change,
)
from repro.experiments.figures import (
    figure6_selectivity,
    figure7_tightness,
    figure_plan_change,
)
from repro.workload.measurement import FAMILIES


@pytest.fixture(scope="module")
def measurements():
    return run_all(SMOKE_CONFIG)


class TestHarness:
    def test_measurement_count(self, measurements):
        # One measurement per (dataset, family, class/cluster).
        expected = 0
        for name in SMOKE_CONFIG.datasets:
            dataset = dataset_for(SMOKE_CONFIG, name)
            for family in SMOKE_CONFIG.families:
                trained = train_family(dataset, family, SMOKE_CONFIG)
                expected += len(trained.model.class_labels)
        assert len(measurements) == expected

    def test_cached(self, measurements):
        assert run_all(SMOKE_CONFIG) is measurements

    def test_all_families_present(self, measurements):
        assert {m.family for m in measurements} == set(FAMILIES)

    def test_exact_tree_envelopes_have_equal_selectivities(
        self, measurements
    ):
        for m in measurements:
            if m.family == "decision_tree" and not m.envelope_is_false:
                assert m.envelope_selectivity == pytest.approx(
                    m.original_selectivity, abs=1e-9
                )

    def test_envelope_soundness_implied_by_selectivities(
        self, measurements
    ):
        """An upper envelope can never be MORE selective than the class."""
        for m in measurements:
            assert (
                m.envelope_selectivity
                >= m.original_selectivity - 1e-9
            ), m

    def test_numeric_feature_columns(self):
        dataset = dataset_for(SMOKE_CONFIG, "hypothyroid")
        numeric = numeric_feature_columns(dataset)
        assert "age" in numeric
        assert "sex" not in numeric


class TestTables:
    def test_table2_matches_spec(self):
        rows = table2_rows(SMOKE_CONFIG)
        assert len(rows) == len(SMOKE_CONFIG.datasets)
        for row in rows:
            assert row.test_size >= SMOKE_CONFIG.rows_target
            assert row.test_size % row.train_size == 0

    def test_table3_families(self, measurements):
        result = table3_runtime_reduction(
            SMOKE_CONFIG, measurements=measurements
        )
        assert set(result) <= set(PAPER_RUNTIME_REDUCTION)
        for value in result.values():
            assert -100.0 <= value <= 100.0

    def test_table4_families(self, measurements):
        result = table4_plan_change(SMOKE_CONFIG, measurements=measurements)
        assert set(result) <= set(PAPER_PLAN_CHANGE)
        for value in result.values():
            assert 0.0 <= value <= 100.0


class TestFigures:
    @pytest.mark.parametrize("figure", [3, 4, 5])
    def test_plan_change_figures(self, figure, measurements):
        series = figure_plan_change(
            figure, SMOKE_CONFIG, measurements=measurements
        )
        assert set(series) == set(SMOKE_CONFIG.datasets)

    def test_figure6_buckets(self, measurements):
        rows = figure6_selectivity(SMOKE_CONFIG, measurements=measurements)
        assert [r.bucket for r in rows] == ["<1%", "1-10%", "10-50%", ">50%"]
        assert sum(r.original_count for r in rows) == len(measurements)

    def test_figure7_points(self, measurements):
        points = figure7_tightness(SMOKE_CONFIG, measurements=measurements)
        assert points
        for point in points:
            assert point.family in ("naive_bayes", "clustering")
            assert (
                point.envelope_selectivity
                >= point.original_selectivity - 1e-9
            )


class TestOverhead:
    def test_rows_cover_config(self):
        config = ExperimentConfig(
            rows_target=2000,
            train_cap=200,
            nb_bins=4,
            cluster_bins=4,
            max_nodes=100,
            datasets=("diabetes",),
        )
        rows = overhead_rows(config)
        assert len(rows) == 3
        for row in rows:
            assert row.train_seconds >= 0
            assert row.derive_seconds >= 0
            assert row.optimize_seconds >= 0


class TestAblations:
    def test_two_class_comparison_shapes(self):
        config = ExperimentConfig(
            train_cap=200, nb_bins=4, max_nodes=100
        )
        rows = two_class_comparison(datasets=("diabetes",), config=config)
        assert {r.mode for r in rows} == {"generic", "exact-2class"}

    def test_enumeration_comparison(self):
        rows = enumeration_comparison(dims_range=(2, 3), members_per_dim=4)
        assert len(rows) == 2
        for row in rows:
            assert row.enumeration_seconds is not None
            # Enumeration is exact: the top-down gap is never negative.
            assert row.selectivity_gap is not None
            assert row.selectivity_gap >= -1e-9

    def test_enumeration_skipped_when_too_large(self):
        rows = enumeration_comparison(
            dims_range=(8,),
            members_per_dim=8,
            enumeration_cell_limit=10_000,
        )
        assert rows[0].enumeration_seconds is None
