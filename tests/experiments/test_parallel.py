"""Tests for the parallel sweep engine and the jobs knob."""

import pytest

from repro.experiments import harness
from repro.experiments.config import (
    ExperimentConfig,
    default_jobs,
    resolve_jobs,
    set_default_jobs,
)
from repro.experiments.harness import run_all, run_task
from repro.experiments.parallel import (
    measurement_key,
    run_tasks,
    sweep_tasks,
)
from repro.workload.measurement import (
    FAMILY_DECISION_TREE,
    FAMILY_NAIVE_BAYES,
)

#: Small enough to train in seconds, big enough to exercise two datasets
#: and two families (= four independent tasks).
TINY = ExperimentConfig(
    rows_target=2_000,
    train_cap=200,
    nb_bins=4,
    cluster_bins=4,
    max_nodes=100,
    tree_max_depth=6,
    repeats=1,
    datasets=("diabetes", "balance_scale"),
    families=(FAMILY_DECISION_TREE, FAMILY_NAIVE_BAYES),
)


@pytest.fixture(autouse=True)
def fresh_caches(monkeypatch, tmp_path):
    """Point the disk cache at a temp dir and reset in-process memos."""
    monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    harness.clear_caches()
    yield
    harness.clear_caches()


class TestJobsResolution:
    def test_default_is_serial(self):
        assert default_jobs() == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4
        assert resolve_jobs(None) == 4

    def test_env_auto(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert default_jobs() == (os.cpu_count() or 1)

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            default_jobs()

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(2) == 2

    def test_explicit_invalid(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_programmatic_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        set_default_jobs(3)
        try:
            assert default_jobs() == 3
        finally:
            set_default_jobs(None)
        assert default_jobs() == 4


class TestSweepTasks:
    def test_grid_order(self):
        tasks = sweep_tasks(TINY)
        assert tasks == [
            ("diabetes", FAMILY_DECISION_TREE),
            ("diabetes", FAMILY_NAIVE_BAYES),
            ("balance_scale", FAMILY_DECISION_TREE),
            ("balance_scale", FAMILY_NAIVE_BAYES),
        ]


class TestParallelDeterminism:
    def test_parallel_matches_serial(self, monkeypatch):
        """The acceptance invariant: an identical measurement set
        (ignoring wall-clock fields) from serial and parallel sweeps."""
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "off")
        serial = run_all(TINY, jobs=1)
        harness.clear_caches()
        parallel = run_all(TINY, jobs=2)
        assert len(serial) == len(parallel)
        assert [measurement_key(m) for m in serial] == [
            measurement_key(m) for m in parallel
        ]

    def test_run_task_is_self_contained(self):
        measurements = run_task(TINY, "diabetes", FAMILY_DECISION_TREE)
        assert measurements
        assert all(m.dataset == "diabetes" for m in measurements)
        assert all(
            m.family == FAMILY_DECISION_TREE for m in measurements
        )

    def test_run_tasks_keyed_by_task(self, monkeypatch):
        tasks = [
            ("diabetes", FAMILY_DECISION_TREE),
            ("balance_scale", FAMILY_DECISION_TREE),
        ]
        seen = []
        results = run_tasks(
            TINY, tasks, jobs=2, on_result=lambda t, m: seen.append(t)
        )
        assert set(results) == set(tasks)
        assert sorted(seen) == sorted(tasks)
        for (dataset, family), measurements in results.items():
            assert all(m.dataset == dataset for m in measurements)


class TestPerTaskCacheResume:
    def test_missing_shard_recomputed_and_rest_reused(self, tmp_path):
        """An interrupted sweep resumes from its finished task shards."""
        from repro.experiments import persistence

        first = run_all(TINY, jobs=1)
        # Simulate an interruption that lost one task's shard.
        victim = persistence.task_path(
            TINY, "diabetes", FAMILY_NAIVE_BAYES
        )
        assert victim.exists()
        victim.unlink()
        harness.clear_caches()
        second = run_all(TINY, jobs=1)
        assert [measurement_key(m) for m in first] == [
            measurement_key(m) for m in second
        ]
        # Untouched tasks came back verbatim from their shards
        # (timing fields included), proving they were not re-run.
        untouched_first = [
            m for m in first if (m.dataset, m.family) != ("diabetes", FAMILY_NAIVE_BAYES)
        ]
        untouched_second = [
            m for m in second if (m.dataset, m.family) != ("diabetes", FAMILY_NAIVE_BAYES)
        ]
        assert untouched_first == untouched_second

    def test_full_cache_hit(self):
        first = run_all(TINY, jobs=1)
        harness.clear_caches()
        assert run_all(TINY, jobs=1) == first


class TestPerTaskTracing:
    @pytest.fixture
    def clean_obs(self):
        from repro import obs

        yield
        obs.configure(None)

    def test_workers_write_per_task_trace_files(self, tmp_path, clean_obs):
        """Each parallel worker traces into its own per-task file."""
        from repro import obs

        trace_dir = tmp_path / "traces"
        obs.configure(trace_dir, label="parent")
        tasks = [
            ("diabetes", FAMILY_DECISION_TREE),
            ("balance_scale", FAMILY_DECISION_TREE),
        ]
        run_tasks(TINY, tasks, jobs=2)
        obs.configure(None)
        names = sorted(p.name for p in trace_dir.glob("*.jsonl"))
        for dataset, family in tasks:
            assert f"trace_task_{dataset}__{family}.jsonl" in names
        summary = obs.summarize(trace_dir, strict=True)
        task_spans = summary.spans["sweep.task"]
        assert task_spans.count == len(tasks)

    def test_serial_path_traces_into_parent_file(self, tmp_path, clean_obs):
        from repro import obs

        trace_dir = tmp_path / "traces"
        tracer = obs.configure(trace_dir, label="parent")
        run_tasks(TINY, [("diabetes", FAMILY_DECISION_TREE)], jobs=1)
        obs.configure(None)
        assert [p.name for p in trace_dir.glob("*.jsonl")] == [
            tracer.path.name
        ]
        summary = obs.summarize(trace_dir, strict=True)
        assert summary.spans["sweep.task"].count == 1


class TestBenchmarkEmitter:
    def test_report_shape_and_invariant(self, tmp_path):
        import json

        from repro.experiments.parallel import benchmark_parallel_sweep

        target = tmp_path / "BENCH_parallel_sweep.json"
        report = benchmark_parallel_sweep(
            TINY, jobs=(1, 2), path=target, scale="tiny"
        )
        assert target.exists()
        assert json.loads(target.read_text()) == report
        assert report["identical_measurements"] is True
        assert report["tasks"] == 4
        assert [run["jobs"] for run in report["runs"]] == [1, 2]
        for run in report["runs"]:
            assert run["seconds"] > 0
            assert run["measurements"] > 0
        assert report["runs"][0]["speedup_vs_first"] == pytest.approx(1.0)
