"""Tests for sweep disk persistence."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import (
    config_fingerprint,
    load_sweep,
    save_sweep,
)
from repro.sql.planner import AccessPath
from repro.workload.measurement import QueryMeasurement


def make_measurement() -> QueryMeasurement:
    return QueryMeasurement(
        dataset="d",
        family="decision_tree",
        model_name="m",
        class_label="c",
        original_selectivity=0.1,
        envelope_selectivity=0.12,
        envelope_disjuncts=3,
        envelope_exact=True,
        envelope_is_false=False,
        envelope_used=True,
        access_path=AccessPath.INDEX_SEARCH,
        plan_changed=True,
        scan_seconds=1.0,
        query_seconds=0.3,
        derive_seconds=0.02,
        rows_total=1000,
        rows_matched=120,
    )


CONFIG = ExperimentConfig(datasets=("diabetes",))


class TestPersistence:
    def test_round_trip(self, tmp_path):
        measurements = [make_measurement()]
        save_sweep(CONFIG, measurements, cache_dir=tmp_path)
        loaded = load_sweep(CONFIG, cache_dir=tmp_path)
        assert loaded == measurements

    def test_miss_for_other_config(self, tmp_path):
        save_sweep(CONFIG, [make_measurement()], cache_dir=tmp_path)
        other = ExperimentConfig(datasets=("chess",))
        assert load_sweep(other, cache_dir=tmp_path) is None

    def test_fingerprint_sensitive_to_config(self):
        assert config_fingerprint(CONFIG) != config_fingerprint(
            ExperimentConfig(datasets=("diabetes",), rows_target=999)
        )

    def test_corrupt_cache_is_a_miss(self, tmp_path):
        path = save_sweep(CONFIG, [make_measurement()], cache_dir=tmp_path)
        path.write_text("not json at all {")
        assert load_sweep(CONFIG, cache_dir=tmp_path) is None

    def test_enum_survives_round_trip(self, tmp_path):
        save_sweep(CONFIG, [make_measurement()], cache_dir=tmp_path)
        loaded = load_sweep(CONFIG, cache_dir=tmp_path)
        assert loaded is not None
        assert loaded[0].access_path is AccessPath.INDEX_SEARCH
