"""Tests for sweep disk persistence (sharded per-task cache, format 3)."""

import json
import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import (
    config_fingerprint,
    load_sweep,
    load_task,
    save_sweep,
    save_task,
    task_path,
)
from repro.sql.planner import AccessPath
from repro.workload.measurement import QueryMeasurement


def make_measurement(
    dataset: str = "diabetes", family: str = "decision_tree"
) -> QueryMeasurement:
    return QueryMeasurement(
        dataset=dataset,
        family=family,
        model_name="m",
        class_label="c",
        original_selectivity=0.1,
        envelope_selectivity=0.12,
        envelope_disjuncts=3,
        envelope_exact=True,
        envelope_is_false=False,
        envelope_used=True,
        access_path=AccessPath.INDEX_SEARCH,
        plan_changed=True,
        scan_seconds=1.0,
        query_seconds=0.3,
        derive_seconds=0.02,
        rows_total=1000,
        rows_matched=120,
    )


CONFIG = ExperimentConfig(
    datasets=("diabetes",), families=("decision_tree", "naive_bayes")
)


def full_sweep(config: ExperimentConfig) -> list[QueryMeasurement]:
    return [
        make_measurement(dataset, family)
        for dataset in config.datasets
        for family in config.families
    ]


class TestPersistence:
    def test_round_trip(self, tmp_path):
        measurements = full_sweep(CONFIG)
        save_sweep(CONFIG, measurements, cache_dir=tmp_path)
        loaded = load_sweep(CONFIG, cache_dir=tmp_path)
        assert loaded == measurements

    def test_miss_for_other_config(self, tmp_path):
        save_sweep(CONFIG, full_sweep(CONFIG), cache_dir=tmp_path)
        other = ExperimentConfig(datasets=("chess",))
        assert load_sweep(other, cache_dir=tmp_path) is None

    def test_fingerprint_sensitive_to_config(self):
        assert config_fingerprint(CONFIG) != config_fingerprint(
            ExperimentConfig(datasets=("diabetes",), rows_target=999)
        )

    def test_corrupt_shard_is_a_miss(self, tmp_path):
        save_sweep(CONFIG, full_sweep(CONFIG), cache_dir=tmp_path)
        shard = task_path(
            CONFIG, "diabetes", "decision_tree", cache_dir=tmp_path
        )
        shard.write_text("not json at all {")
        assert load_sweep(CONFIG, cache_dir=tmp_path) is None
        assert (
            load_task(
                CONFIG, "diabetes", "decision_tree", cache_dir=tmp_path
            )
            is None
        )

    def test_enum_survives_round_trip(self, tmp_path):
        save_sweep(CONFIG, full_sweep(CONFIG), cache_dir=tmp_path)
        loaded = load_sweep(CONFIG, cache_dir=tmp_path)
        assert loaded is not None
        assert loaded[0].access_path is AccessPath.INDEX_SEARCH


class TestTaskShards:
    def test_task_round_trip(self, tmp_path):
        measurements = [make_measurement()]
        save_task(
            CONFIG,
            "diabetes",
            "decision_tree",
            measurements,
            cache_dir=tmp_path,
        )
        assert (
            load_task(
                CONFIG, "diabetes", "decision_tree", cache_dir=tmp_path
            )
            == measurements
        )
        # The other task of the sweep is still a miss.
        assert (
            load_task(CONFIG, "diabetes", "naive_bayes", cache_dir=tmp_path)
            is None
        )
        assert load_sweep(CONFIG, cache_dir=tmp_path) is None

    def test_partial_sweep_keeps_good_shards(self, tmp_path):
        """A corrupt shard is a per-task miss: intact shards still load."""
        save_sweep(CONFIG, full_sweep(CONFIG), cache_dir=tmp_path)
        bad = task_path(
            CONFIG, "diabetes", "naive_bayes", cache_dir=tmp_path
        )
        bad.write_text("{ torn")
        assert (
            load_task(
                CONFIG, "diabetes", "decision_tree", cache_dir=tmp_path
            )
            is not None
        )

    def test_shard_rejects_mismatched_task(self, tmp_path):
        """A shard renamed onto another task's path must not be trusted."""
        source = save_task(
            CONFIG,
            "diabetes",
            "decision_tree",
            [make_measurement()],
            cache_dir=tmp_path,
        )
        target = task_path(
            CONFIG, "diabetes", "naive_bayes", cache_dir=tmp_path
        )
        target.write_text(source.read_text())
        assert (
            load_task(CONFIG, "diabetes", "naive_bayes", cache_dir=tmp_path)
            is None
        )


class TestAtomicWrites:
    def test_torn_write_is_a_miss_then_recoverable(self, tmp_path):
        """Regression: a half-written shard must read as a miss, and a
        subsequent save must repair it — with the old bare ``write_text``
        an interrupted writer left a permanently corrupt entry."""
        measurements = [make_measurement()]
        path = save_task(
            CONFIG,
            "diabetes",
            "decision_tree",
            measurements,
            cache_dir=tmp_path,
        )
        complete = path.read_text()
        path.write_text(complete[: len(complete) // 2])  # simulated tear
        assert (
            load_task(
                CONFIG, "diabetes", "decision_tree", cache_dir=tmp_path
            )
            is None
        )
        save_task(
            CONFIG,
            "diabetes",
            "decision_tree",
            measurements,
            cache_dir=tmp_path,
        )
        assert (
            load_task(
                CONFIG, "diabetes", "decision_tree", cache_dir=tmp_path
            )
            == measurements
        )

    def test_interrupted_replace_preserves_previous_entry(
        self, tmp_path, monkeypatch
    ):
        """A writer dying before ``os.replace`` leaves the old complete
        file in place and no stray temp files that parse as shards."""
        measurements = [make_measurement()]
        save_task(
            CONFIG,
            "diabetes",
            "decision_tree",
            measurements,
            cache_dir=tmp_path,
        )

        def boom(src, dst):
            raise OSError("killed mid-write")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            save_task(
                CONFIG,
                "diabetes",
                "decision_tree",
                [make_measurement("diabetes", "decision_tree")],
                cache_dir=tmp_path,
            )
        monkeypatch.undo()
        assert (
            load_task(
                CONFIG, "diabetes", "decision_tree", cache_dir=tmp_path
            )
            == measurements
        )
        leftovers = [
            p
            for p in tmp_path.rglob("*.tmp")
            if p.is_file()
        ]
        assert leftovers == []


class TestLegacyMigration:
    def _write_legacy(self, tmp_path, measurements) -> None:
        from dataclasses import asdict

        payload = {
            "format": 2,
            "measurements": [
                {**asdict(m), "access_path": m.access_path.value}
                for m in measurements
            ],
        }
        legacy = (
            tmp_path / f"sweep_{config_fingerprint(CONFIG, fmt=2)}.json"
        )
        legacy.write_text(json.dumps(payload))

    def test_format2_file_migrates_to_shards(self, tmp_path):
        measurements = full_sweep(CONFIG)
        self._write_legacy(tmp_path, measurements)
        assert load_sweep(CONFIG, cache_dir=tmp_path) == measurements
        # Migration materialized per-task shards.
        for dataset in CONFIG.datasets:
            for family in CONFIG.families:
                assert (
                    load_task(CONFIG, dataset, family, cache_dir=tmp_path)
                    is not None
                )

    def test_incomplete_legacy_file_is_a_miss(self, tmp_path):
        # Only one of the two tasks present: never migrate half a sweep.
        self._write_legacy(tmp_path, [make_measurement()])
        assert load_sweep(CONFIG, cache_dir=tmp_path) is None
        assert (
            load_task(CONFIG, "diabetes", "naive_bayes", cache_dir=tmp_path)
            is None
        )
