"""Tests for the EXPERIMENTS.md generator."""

import pytest

from repro.experiments import SMOKE_CONFIG
from repro.experiments.report_doc import (
    render_experiments_md,
    write_experiments_md,
)


@pytest.fixture(scope="module")
def document():
    return render_experiments_md(SMOKE_CONFIG)


class TestReportDocument:
    def test_contains_every_artifact_section(self, document):
        for heading in (
            "Table 2",
            "average reduction in running time",
            "changed physical plan",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "overheads",
            "Ablations",
        ):
            assert heading in document, heading

    def test_contains_paper_reference_values(self, document):
        for value in ("73.7", "63.5", "79.0", "72.7", "75.3", "76.6"):
            assert value in document, value

    def test_lists_configured_datasets(self, document):
        for name in SMOKE_CONFIG.datasets:
            assert name in document

    def test_write_to_disk(self, tmp_path):
        target = write_experiments_md(
            tmp_path / "EXPERIMENTS.md", SMOKE_CONFIG
        )
        assert target.exists()
        assert target.read_text().startswith("# EXPERIMENTS")
