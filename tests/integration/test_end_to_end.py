"""End-to-end integration: every model family through the full pipeline.

For each family the test trains a model on a synthetic dataset, registers
it (envelope derivation), loads the doubled data into SQLite, tunes
indexes, and checks the central invariant of the whole system: the
optimized execution returns *exactly* the rows of the extract-and-mine
baseline, while never fetching more rows than it.
"""

import pytest

from repro.core.catalog import ModelCatalog
from repro.core.cluster_envelope import clustering_space
from repro.core.optimizer import MiningQuery
from repro.core.predicates import Comparison, Op
from repro.core.rewrite import PredictionEquals, PredictionIn
from repro.data.expansion import expand_rows
from repro.data.generators import generate
from repro.mining.decision_tree import DecisionTreeLearner
from repro.mining.density import DensityClusterLearner
from repro.mining.discretized_cluster import DiscretizedClusterModel
from repro.mining.gmm import GaussianMixtureLearner
from repro.mining.kmeans import KMeansLearner
from repro.mining.naive_bayes import NaiveBayesLearner
from repro.mining.rules import RuleLearner
from repro.sql.database import Database, load_table
from repro.sql.miningext import PredictionJoinExecutor
from repro.sql.advisor import tune_for_workload


@pytest.fixture(scope="module")
def dataset():
    return generate("anneal_u", train_size=500, seed=9)


@pytest.fixture(scope="module")
def loaded(dataset):
    db = Database()
    feature_rows = [
        {c: row[c] for c in dataset.feature_columns}
        for row in expand_rows(dataset.train_rows, 4000)
    ]
    load_table(db, "t", feature_rows)
    yield db, feature_rows
    db.close()


def numeric_columns(dataset):
    first = dataset.train_rows[0]
    return tuple(
        c
        for c in dataset.feature_columns
        if not isinstance(first[c], str)
    )


def build_model(dataset, family):
    if family == "tree":
        return DecisionTreeLearner(
            dataset.feature_columns, "label", max_depth=8, name="m_tree"
        ).fit(dataset.train_rows)
    if family == "nb":
        return NaiveBayesLearner(
            dataset.feature_columns, "label", bins=6, name="m_nb"
        ).fit(dataset.train_rows)
    if family == "rules":
        return RuleLearner(
            dataset.feature_columns, "label", name="m_rules"
        ).fit(dataset.train_rows)
    if family == "kmeans":
        base = KMeansLearner(
            numeric_columns(dataset), 4, name="m_kmeans"
        ).fit(dataset.train_rows)
        space = clustering_space(base, dataset.train_rows, bins=6)
        return DiscretizedClusterModel(base, space, name="m_kmeans")
    if family == "gmm":
        base = GaussianMixtureLearner(
            numeric_columns(dataset), 3, name="m_gmm"
        ).fit(dataset.train_rows)
        space = clustering_space(base, dataset.train_rows, bins=6)
        return DiscretizedClusterModel(base, space, name="m_gmm")
    if family == "density":
        return DensityClusterLearner(
            numeric_columns(dataset)[:3],
            bins=5,
            density_threshold=3,
            name="m_density",
        ).fit(dataset.train_rows)
    raise AssertionError(family)


FAMILIES = ("tree", "nb", "rules", "kmeans", "gmm", "density")


@pytest.mark.parametrize("family", FAMILIES)
def test_pipeline_equivalence(dataset, loaded, family):
    db, feature_rows = loaded
    model = build_model(dataset, family)
    catalog = ModelCatalog()
    catalog.register(model, rows=dataset.train_rows)
    executor = PredictionJoinExecutor(db, catalog)
    for label in model.class_labels:
        query = MiningQuery(
            "t", mining_predicates=(PredictionEquals(model.name, label),)
        )
        optimized = executor.execute_optimized(query)
        naive = executor.execute_naive(query)

        def key(r):
            return tuple(sorted(r.items()))

        assert sorted(map(key, optimized.rows)) == sorted(
            map(key, naive.rows)
        ), (family, label)
        assert optimized.rows_fetched <= naive.rows_fetched


@pytest.mark.parametrize("family", ("tree", "nb", "kmeans"))
def test_pipeline_with_relational_predicate_and_tuning(
    dataset, loaded, family
):
    db, feature_rows = loaded
    model = build_model(dataset, family)
    catalog = ModelCatalog()
    catalog.register(model, rows=dataset.train_rows)
    db.drop_all_indexes("t")
    tune_for_workload(
        db,
        "t",
        [catalog.envelope(model.name, l).predicate for l in model.class_labels],
    )
    executor = PredictionJoinExecutor(db, catalog)
    numeric = numeric_columns(dataset)[0]
    values = sorted({row[numeric] for row in feature_rows})
    midpoint = values[len(values) // 2]
    labels = model.class_labels[:2]
    query = MiningQuery(
        "t",
        relational_predicate=Comparison(numeric, Op.LE, midpoint),
        mining_predicates=(PredictionIn(model.name, tuple(labels)),),
    )
    optimized = executor.execute_optimized(query)
    naive = executor.execute_naive(query)
    assert optimized.rows_returned == naive.rows_returned
    for row in optimized.rows:
        assert row[numeric] <= midpoint


def test_model_interchange_through_pipeline(dataset, loaded, tmp_path):
    """A model exported to JSON and re-imported drives the same plans."""
    from repro.mining.interchange import load_model, save_model

    db, feature_rows = loaded
    original = build_model(dataset, "tree")
    path = tmp_path / "model.json"
    save_model(original, path)
    clone = load_model(path)

    catalog = ModelCatalog()
    catalog.register(clone)
    executor = PredictionJoinExecutor(db, catalog)
    label = clone.class_labels[0]
    query = MiningQuery(
        "t", mining_predicates=(PredictionEquals(clone.name, label),)
    )
    optimized = executor.execute_optimized(query)
    expected = sum(
        1 for row in feature_rows if original.predict(row) == label
    )
    assert optimized.rows_returned == expected
