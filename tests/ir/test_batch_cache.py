"""The interned-node mask cache and plan-once operand ordering.

``BatchLowering`` lowers each distinct (pointer-identical) node once
per batch; ``_planned_operands`` sorts a connective's operands once per
(node, statistics version).  Both must stay byte-identical to the naive
clause-by-clause reference (``evaluate_batch_naive``).
"""

import numpy as np
import pytest

from repro.core.columns import ColumnBatch
from repro.core.predicates import (
    And,
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    equals,
)
from repro.exceptions import PredicateError
from repro.ir import intern
from repro.ir import batch as batch_lowering
from repro.ir.batch import (
    BatchLowering,
    evaluate_batch,
    evaluate_batch_naive,
    reset_plan_memo,
)

ROWS = [{"x": float(i), "y": float(i % 7), "city": c}
        for i, c in enumerate("paris rome berlin oslo".split() * 8)]


@pytest.fixture(autouse=True)
def fresh_plan_memo():
    reset_plan_memo()
    yield
    reset_plan_memo()


def scalar_masks(pred, rows):
    return np.array([bool(pred.evaluate(row)) for row in rows])


class TestMaskCache:
    def test_shared_atom_lowered_once(self):
        # Structurally equal atoms across disjuncts intern to one node:
        # Or, 2 Ands, and 3 distinct atoms = 6 computed; the fourth
        # atom occurrence (the shared `x >= 8`) is a cache hit.
        pred = intern(Or((
            And((Comparison("x", Op.GE, 8.0), Comparison("y", Op.LT, 3.0))),
            And((Comparison("x", Op.GE, 8.0), Comparison("y", Op.GE, 5.0))),
        )))
        context = BatchLowering(ColumnBatch(ROWS))
        mask = context.mask(pred)
        assert context.stats.computed == 6
        assert context.stats.shared == 1
        assert context.stats.share_ratio == pytest.approx(1 / 7)
        assert np.array_equal(mask, scalar_masks(pred, ROWS))

    def test_cache_returns_the_same_array(self):
        atom = Comparison("x", Op.LT, 10.0)
        context = BatchLowering(ColumnBatch(ROWS))
        assert context.mask(atom) is context.mask(atom)

    def test_connective_results_are_private_copies(self):
        # Connectives combine cached masks in place on a *copy*; the
        # cached operand mask must come back unclobbered.
        atom = Comparison("x", Op.LT, 10.0)
        other = Comparison("y", Op.LT, 3.0)
        pred = And((atom, other))
        context = BatchLowering(ColumnBatch(ROWS))
        before = context.mask(atom).copy()
        context.mask(pred)
        assert np.array_equal(context.mask(atom), before)

    def test_matches_naive_byte_for_byte(self):
        pred = intern(Or((
            And((Comparison("x", Op.GE, 4.0), Comparison("y", Op.LT, 5.0))),
            And((Comparison("x", Op.GE, 4.0), equals("city", "rome"))),
            Not(InSet("city", ("paris", "oslo"))),
            Interval("x", 10.0, 20.0, True, False),
        )))
        batch = ColumnBatch(ROWS)
        cached = evaluate_batch(pred, batch)
        naive = evaluate_batch_naive(pred, batch)
        assert cached.dtype == naive.dtype == np.bool_
        assert np.array_equal(cached, naive)
        assert np.array_equal(cached, scalar_masks(pred, ROWS))


def make_estimator(version=None):
    calls = []

    def estimator(pred):
        calls.append(pred)
        return (hash(repr(pred)) % 89) / 89.0

    if version is not None:
        estimator.stats_version = version
    estimator.calls = calls
    return estimator


PLANNED = intern(Or((
    And((Comparison("x", Op.GE, 8.0), Comparison("y", Op.LT, 3.0))),
    And((Comparison("x", Op.LT, 4.0), Comparison("y", Op.GE, 5.0))),
)))


class TestPlanMemo:
    def test_order_planned_once_per_stats_version(self):
        estimator = make_estimator(version=1)
        first = BatchLowering(ColumnBatch(ROWS[:16]), estimator)
        first.mask(PLANNED)
        # One OR and two ANDs: three connectives planned, none reused.
        assert first.stats.plan_misses == 3
        assert first.stats.plan_hits == 0

        second = BatchLowering(ColumnBatch(ROWS[16:]), estimator)
        second.mask(PLANNED)
        assert second.stats.plan_misses == 0
        assert second.stats.plan_hits == 3

    def test_same_version_shares_across_estimator_instances(self):
        BatchLowering(ColumnBatch(ROWS), make_estimator(version=7)).mask(
            PLANNED
        )
        twin = make_estimator(version=7)
        context = BatchLowering(ColumnBatch(ROWS), twin)
        context.mask(PLANNED)
        assert context.stats.plan_hits == 3
        # The memo answered every ordering: the twin never ran.
        assert twin.calls == []

    def test_new_stats_version_replans(self):
        BatchLowering(ColumnBatch(ROWS), make_estimator(version=1)).mask(
            PLANNED
        )
        bumped = make_estimator(version=2)
        context = BatchLowering(ColumnBatch(ROWS), bumped)
        context.mask(PLANNED)
        assert context.stats.plan_misses == 3
        assert bumped.calls != []

    def test_versionless_estimator_keys_by_identity(self):
        plain = make_estimator()
        BatchLowering(ColumnBatch(ROWS), plain).mask(PLANNED)
        context = BatchLowering(ColumnBatch(ROWS), plain)
        context.mask(PLANNED)
        assert context.stats.plan_hits == 3
        other = make_estimator()
        replanned = BatchLowering(ColumnBatch(ROWS), other)
        replanned.mask(PLANNED)
        assert replanned.stats.plan_misses == 3

    def test_reset_plan_memo_forces_replanning(self):
        estimator = make_estimator(version=1)
        BatchLowering(ColumnBatch(ROWS), estimator).mask(PLANNED)
        reset_plan_memo()
        context = BatchLowering(ColumnBatch(ROWS), estimator)
        context.mask(PLANNED)
        assert context.stats.plan_misses == 3

    def test_memoized_order_matches_fresh_sort(self):
        estimator = make_estimator(version=3)
        batch = ColumnBatch(ROWS)
        baseline = evaluate_batch_naive(PLANNED, batch, estimator)
        for _ in range(3):
            assert np.array_equal(
                evaluate_batch(PLANNED, batch, estimator), baseline
            )


class TestInSetVectorization:
    def test_numeric_fast_path_matches_scalar(self):
        pred = InSet("x", (1, 4.0, 30))
        batch = ColumnBatch(ROWS)
        assert np.array_equal(
            evaluate_batch(pred, batch), scalar_masks(pred, ROWS)
        )

    def test_big_ints_fall_back_to_exact_membership(self):
        # 2**53 and 2**53 + 1 collide in float64; the fast path must
        # refuse and the object path must keep them distinct.
        rows = [{"n": 2**53}, {"n": 2**53 + 1}, {"n": 3}]
        pred = InSet("n", (2**53 + 1,))
        mask = evaluate_batch(pred, ColumnBatch(rows))
        assert mask.tolist() == [False, True, False]
        assert np.array_equal(mask, scalar_masks(pred, rows))

    def test_mixed_values_on_object_column(self):
        rows = [{"c": "paris"}, {"c": 3}, {"c": None}, {"c": "rome"}]
        pred = InSet("c", ("paris", 3))
        mask = evaluate_batch(pred, ColumnBatch(rows))
        assert mask.tolist() == [True, True, False, False]
        assert np.array_equal(mask, scalar_masks(pred, rows))

    def test_none_cells_never_match(self):
        rows = [{"n": None}, {"n": 5}]
        pred = InSet("n", (5,))
        mask = evaluate_batch(pred, ColumnBatch(rows))
        assert mask.tolist() == [False, True]


class TestIntervalSingleFetch:
    def test_two_sided_interval_resolves_the_column_once(self, monkeypatch):
        calls = []
        original = batch_lowering._ordered_column

        def counting(batch, column, value):
            calls.append((column, value))
            return original(batch, column, value)

        monkeypatch.setattr(batch_lowering, "_ordered_column", counting)
        pred = Interval("x", 4.0, 20.0, True, False)
        batch = ColumnBatch(ROWS)
        mask = evaluate_batch(pred, batch)
        assert len(calls) == 1
        assert np.array_equal(mask, scalar_masks(pred, ROWS))

    def test_half_open_intervals_match_scalar(self):
        batch = ColumnBatch(ROWS)
        for pred in (
            Interval("x", None, 9.0, False, True),
            Interval("x", 9.0, None, False, False),
            Interval("city", "b", "p", True, False),
        ):
            assert np.array_equal(
                evaluate_batch(pred, batch), scalar_masks(pred, ROWS)
            )

    def test_interval_on_wrong_kind_raises_like_scalar(self):
        pred = Interval("city", 1.0, 5.0, True, True)
        with pytest.raises(PredicateError):
            evaluate_batch(pred, ColumnBatch(ROWS))
        with pytest.raises(PredicateError):
            pred.evaluate(ROWS[0])
