"""Unit tests for hash-consing and structural fingerprints."""

import pytest

from repro.core.predicates import (
    FALSE,
    TRUE,
    And,
    Comparison,
    FalsePredicate,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    Predicate,
    TruePredicate,
    equals,
)
from repro.exceptions import PredicateError
from repro.ir import clear_intern_table, fingerprint, intern, intern_stats
from repro.ir import interning as interning_module


@pytest.fixture(autouse=True)
def fresh_table():
    """Start each test from an empty intern table."""
    clear_intern_table()
    yield
    clear_intern_table()


class TestCanonicalOrdering:
    def test_and_is_order_insensitive(self):
        a, b = equals("x", 1), equals("y", 2)
        assert And((a, b)) == And((b, a))
        assert hash(And((a, b))) == hash(And((b, a)))

    def test_or_is_order_insensitive(self):
        a, b, c = equals("x", 1), equals("y", 2), Comparison("z", Op.GT, 3)
        assert Or((a, b, c)) == Or((c, b, a))

    def test_nested_commutative_forms_are_equal(self):
        a, b, c = equals("x", 1), equals("y", 2), equals("z", 3)
        left = Or((And((a, b)), c))
        right = Or((c, And((b, a))))
        assert left == right

    def test_duplicates_are_preserved(self):
        # Canonicalization sorts; it must not silently dedupe.
        a = equals("x", 1)
        assert len(And((a, a)).operands) == 2


class TestIntern:
    def test_identity_for_equal_trees(self):
        a, b = equals("x", 1), equals("y", 2)
        assert intern(And((a, b))) is intern(And((b, a)))

    def test_interning_is_idempotent(self):
        pred = intern(Or((equals("x", 1), equals("y", 2))))
        assert intern(pred) is pred

    def test_shared_subtrees_collapse(self):
        atom = Interval("x", 0, 10)
        first = intern(And((atom, equals("y", 1))))
        second = intern(Or((Interval("x", 0, 10), equals("z", 2))))
        shared = [o for o in second.operands if isinstance(o, Interval)]
        assert shared[0] is first.operands[0] or shared[0] is first.operands[1]

    def test_constants_intern_to_singletons(self):
        assert intern(TruePredicate()) is TRUE
        assert intern(FalsePredicate()) is FALSE
        assert intern(TRUE) is TRUE

    def test_non_ir_subclass_passes_through(self):
        class Custom(Predicate):
            def evaluate(self, row):
                return True

            def columns(self):
                return frozenset()

        custom = Custom()
        assert intern(custom) is custom
        assert intern_stats()["size"] == 0

    def test_stats_count_hits_and_misses(self):
        pred = And((equals("x", 1), equals("y", 2)))
        intern(pred)
        before = intern_stats()
        intern(And((equals("y", 2), equals("x", 1))))
        after = intern_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["size"] == before["size"]

    def test_table_bound_triggers_reset(self, monkeypatch):
        monkeypatch.setattr(interning_module, "MAX_INTERN_ENTRIES", 4)
        for i in range(10):
            intern(equals("x", i))
        stats = intern_stats()
        assert stats["resets"] >= 1
        assert stats["size"] <= 4
        # Interning still works after a wholesale clear.
        assert intern(equals("x", 1)) is intern(equals("x", 1))


class TestFingerprint:
    def test_stable_hex_digest(self):
        digest = fingerprint(equals("age", 30))
        assert len(digest) == 64
        assert digest == fingerprint(equals("age", 30))

    def test_commutative_forms_share_a_fingerprint(self):
        a, b = Interval("age", 18, 65), InSet("city", ("paris", "rome"))
        assert fingerprint(And((a, b))) == fingerprint(And((b, a)))

    def test_distinct_structures_differ(self):
        a, b = equals("x", 1), equals("y", 2)
        assert fingerprint(And((a, b))) != fingerprint(Or((a, b)))
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint(Not(a)) != fingerprint(a)

    def test_connective_arity_is_unambiguous(self):
        a, b, c = equals("x", 1), equals("y", 2), equals("z", 3)
        nested = And((And((a, b)), c))
        flat = And((a, b, c))
        assert fingerprint(nested) != fingerprint(flat)

    def test_numeric_equality_respected(self):
        # 5 == 5.0, so the (equal) nodes must share a digest.
        assert fingerprint(equals("x", 5)) == fingerprint(equals("x", 5.0))
        assert fingerprint(equals("x", 5)) != fingerprint(equals("x", 5.5))

    def test_string_vs_numeric_values_differ(self):
        assert fingerprint(equals("x", 5)) != fingerprint(equals("x", "5"))

    def test_interval_openness_matters(self):
        closed = Interval("x", 0, 1)
        open_high = Interval("x", 0, 1, high_closed=False)
        assert fingerprint(closed) != fingerprint(open_high)

    def test_memoized_on_canonical_instance(self):
        pred = And((equals("x", 1), equals("y", 2)))
        first = fingerprint(pred)
        # Second call hits the memo (and must agree).
        assert fingerprint(And((equals("y", 2), equals("x", 1)))) == first

    def test_non_ir_node_raises(self):
        class Custom(Predicate):
            def evaluate(self, row):
                return True

            def columns(self):
                return frozenset()

        with pytest.raises(PredicateError):
            fingerprint(Custom())
