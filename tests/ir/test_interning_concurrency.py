"""Intern table and fingerprint memo thread-safety."""

from __future__ import annotations

import threading

import pytest

from repro.core.predicates import And, Comparison, Op, Or
from repro.ir import clear_intern_table, fingerprint, intern, intern_stats

THREADS = 8
ROUNDS = 50


@pytest.fixture(autouse=True)
def fresh_table():
    clear_intern_table()
    yield
    clear_intern_table()


def make_predicate(variant: int):
    """Structurally equal trees for equal ``variant`` values."""
    return Or(
        (
            And(
                (
                    Comparison("age", Op.LT, 30 + variant),
                    Comparison("income", Op.GE, 10_000 * (variant + 1)),
                )
            ),
            Comparison("region", Op.EQ, f"zone{variant}"),
        )
    )


def test_concurrent_interning_yields_one_canonical_object():
    before = intern_stats()
    canonical: list[dict[int, int]] = [dict() for _ in range(THREADS)]
    barrier = threading.Barrier(THREADS)

    def worker(slot: int) -> None:
        barrier.wait()
        for round_number in range(ROUNDS):
            variant = round_number % 4
            node = intern(make_predicate(variant))
            canonical[slot][variant] = id(node)

    threads = [
        threading.Thread(target=worker, args=(slot,))
        for slot in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Every thread resolved each variant to the *same* object.
    for variant in range(4):
        ids = {canonical[slot][variant] for slot in range(THREADS)}
        assert len(ids) == 1, f"variant {variant} interned {len(ids)} ways"

    stats = intern_stats()
    # One intern() call per round per thread, each a table hit or miss
    # at the root, plus child-node lookups on misses; no lost updates
    # means totals are at least the root-call count and self-consistent.
    hits = stats["hits"] - before["hits"]
    misses = stats["misses"] - before["misses"]
    assert hits + misses >= THREADS * ROUNDS
    # ``resets`` counts clear_intern_table() calls for the whole process;
    # nothing may have cleared the table while the workers were running.
    assert stats["resets"] == before["resets"]


def test_concurrent_fingerprints_agree():
    digests: list[set] = [set() for _ in range(THREADS)]
    barrier = threading.Barrier(THREADS)

    def worker(slot: int) -> None:
        barrier.wait()
        for _ in range(ROUNDS):
            digests[slot].add(fingerprint(make_predicate(2)))

    threads = [
        threading.Thread(target=worker, args=(slot,))
        for slot in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    merged = set().union(*digests)
    assert len(merged) == 1  # one structure, one digest, every thread

    # The memo did not corrupt cross-structure digests either.
    assert fingerprint(make_predicate(1)) != fingerprint(make_predicate(2))


def test_interned_node_fingerprint_stable_across_threads():
    node = intern(make_predicate(0))
    before = fingerprint(node)
    results: list[str] = []

    def worker() -> None:
        results.append(fingerprint(intern(make_predicate(0))))

    threads = [threading.Thread(target=worker) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(result == before for result in results)
