"""Unit tests for the staged simplification pass pipeline."""

import json

import pytest

from repro import obs
from repro.core.normalize import simplify
from repro.core.predicates import (
    FALSE,
    TRUE,
    And,
    Comparison,
    Not,
    Op,
    Or,
    equals,
)
from repro.ir import (
    Pass,
    PassAbort,
    PassPipeline,
    default_pipeline,
    intern,
    simplify_pipeline,
)


@pytest.fixture
def clean_obs():
    obs.configure(None)
    yield
    obs.configure(None)


A = equals("x", 1)
B = equals("y", 2)
C = Comparison("z", Op.GT, 3)


class TestDefaultPipeline:
    def test_absorption(self):
        # (a AND b) OR a simplifies to a.
        assert simplify_pipeline(Or((And((A, B)), A))) == A

    def test_contradiction_collapses_to_false(self):
        pred = And((A, equals("x", 2)))
        assert simplify_pipeline(pred) is FALSE

    def test_negation_pushdown(self):
        # NOT(NOT a) simplifies to a.
        assert simplify_pipeline(Not(Not(A))) == A

    def test_constants_pass_through(self):
        assert simplify_pipeline(TRUE) is TRUE
        assert simplify_pipeline(FALSE) is FALSE

    def test_output_is_interned(self):
        out = simplify_pipeline(Or((And((A, B)), And((A, C)))))
        assert intern(out) is out

    def test_matches_simplify_facade(self):
        preds = [
            Or((And((A, B)), A)),
            Not(Or((A, B))),
            And((A, Or((B, C)))),
            Or((And((A, B)), And((B, A)))),
        ]
        for pred in preds:
            assert simplify(pred) == simplify_pipeline(pred)

    def test_budget_overflow_returns_input(self):
        # 3 disjuncts x 3 disjuncts exceeds a budget of 4 mid-expansion;
        # the pipeline must keep the predicate it was given.
        wide = And((
            Or((A, B, C)),
            Or((equals("x", 7), equals("y", 8), equals("z", 9))),
        ))
        out = simplify_pipeline(wide, max_terms=4)
        assert out == wide
        assert intern(out) is out

    def test_default_pipeline_is_shared(self):
        assert default_pipeline() is default_pipeline()
        names = [p.name for p in default_pipeline().passes]
        assert names == ["nnf", "dnf", "solve", "absorb", "factor"]


class TestRunDetailed:
    def test_per_pass_results(self):
        pipeline = default_pipeline()
        out, results = pipeline.run_detailed(Or((And((A, B)), A)))
        assert out == A
        assert [r.name for r in results] == [
            "nnf", "dnf", "solve", "absorb", "factor",
        ]
        by_name = {r.name: r for r in results}
        # Absorption is the pass that drops the subsumed disjunct.
        assert by_name["absorb"].changed
        assert by_name["absorb"].atoms_after < by_name["absorb"].atoms_before
        assert not by_name["nnf"].changed
        assert all(r.seconds >= 0.0 for r in results)
        assert not any(r.aborted for r in results)

    def test_abort_is_reported(self):
        wide = And((
            Or((A, B, C)),
            Or((equals("x", 7), equals("y", 8), equals("z", 9))),
        ))
        out, results = default_pipeline().run_detailed(wide, max_terms=4)
        assert out == wide
        assert results[-1].name == "dnf"
        assert results[-1].aborted
        assert not results[-1].changed


class TestCustomPipelines:
    def test_pass_order_is_respected(self):
        seen = []

        def record(name):
            def fn(pred, context):
                seen.append(name)
                return pred

            return fn

        pipeline = PassPipeline(
            "probe", (Pass("one", record("one")), Pass("two", record("two")))
        )
        pipeline.run(A)
        assert seen == ["one", "two"]

    def test_context_reaches_passes(self):
        def fn(pred, context):
            assert context["max_terms"] == 7
            return pred

        PassPipeline("probe", (Pass("check", fn),)).run(A, max_terms=7)

    def test_abort_discards_earlier_rewrites(self):
        def rewrite(pred, context):
            return B

        def abort(pred, context):
            raise PassAbort("no")

        pipeline = PassPipeline(
            "probe", (Pass("rewrite", rewrite), Pass("abort", abort))
        )
        assert pipeline.run(A) == A


class TestObservability:
    def test_counters_and_spans_emitted(self, clean_obs, tmp_path):
        tracer = obs.configure(tmp_path, label="passes")
        simplify_pipeline(Or((And((A, B)), A)))
        snapshot = obs.counters_snapshot()
        assert snapshot["ir.pass.absorb.runs"] == 1
        assert snapshot["ir.pass.absorb.rewrites"] == 1
        assert snapshot["ir.pass.nnf.runs"] == 1
        assert "ir.pass.nnf.rewrites" not in snapshot
        assert snapshot["ir.pass.absorb.atoms_before"] >= 1
        obs.flush()
        lines = [
            json.loads(line)
            for line in tracer.path.read_text().splitlines()
            if line.strip()
        ]
        span_names = {
            p["name"] for p in lines if p.get("type") == "span"
        }
        assert "ir.pass.simplify.nnf" in span_names
        assert "ir.pass.simplify.absorb" in span_names

    def test_abort_counter(self, clean_obs, tmp_path):
        obs.configure(tmp_path)
        wide = And((
            Or((A, B, C)),
            Or((equals("x", 7), equals("y", 8), equals("z", 9))),
        ))
        simplify_pipeline(wide, max_terms=4)
        assert obs.counters_snapshot()["ir.pass.dnf.aborted"] == 1
