"""Unit tests for the IR visitor / transformer dispatch."""

import pytest

from repro.core.predicates import (
    FALSE,
    TRUE,
    And,
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    Predicate,
    equals,
)
from repro.exceptions import PredicateError
from repro.ir import PredicateTransformer, PredicateVisitor


class NodeNamer(PredicateVisitor):
    def visit_true(self, pred):
        return "true"

    def visit_false(self, pred):
        return "false"

    def visit_comparison(self, pred):
        return f"cmp:{pred.column}"

    def visit_in_set(self, pred):
        return f"in:{pred.column}"

    def visit_interval(self, pred):
        return f"range:{pred.column}"

    def visit_and(self, pred):
        return "and(" + ",".join(self.visit(o) for o in pred.operands) + ")"

    def visit_or(self, pred):
        return "or(" + ",".join(self.visit(o) for o in pred.operands) + ")"

    def visit_not(self, pred):
        return f"not({self.visit(pred.operand)})"


class TestVisitor:
    def test_dispatch_per_node_type(self):
        namer = NodeNamer()
        assert namer.visit(TRUE) == "true"
        assert namer.visit(FALSE) == "false"
        assert namer.visit(equals("a", 1)) == "cmp:a"
        assert namer.visit(InSet("b", (1, 2))) == "in:b"
        assert namer.visit(Interval("c", 0, 9)) == "range:c"
        assert namer.visit(Not(equals("a", 1))) == "not(cmp:a)"

    def test_recursive_dispatch(self):
        pred = Or((And((equals("a", 1), equals("b", 2))), equals("c", 3)))
        # Operands appear in canonical (constructor-sorted) order.
        assert NodeNamer().visit(pred) == "or(and(cmp:a,cmp:b),cmp:c)"

    def test_extra_args_are_passed_through(self):
        class Scaled(PredicateVisitor):
            def visit_comparison(self, pred, factor):
                return pred.value * factor

        assert Scaled().visit(equals("a", 3), 10) == 30

    def test_unknown_node_raises(self):
        class Custom(Predicate):
            def evaluate(self, row):
                return True

            def columns(self):
                return frozenset()

        with pytest.raises(PredicateError):
            NodeNamer().visit(Custom())


class TestTransformer:
    def test_identity_preserves_object(self):
        pred = Or((And((equals("a", 1), equals("b", 2))), Not(equals("c", 3))))
        assert PredicateTransformer().visit(pred) is pred

    def test_leaf_rewrite_rebuilds_spine(self):
        class RenameColumn(PredicateTransformer):
            def visit_comparison(self, pred):
                if pred.column == "a":
                    return Comparison("z", pred.op, pred.value)
                return pred

        pred = And((equals("a", 1), Or((equals("b", 2), equals("a", 3)))))
        out = RenameColumn().visit(pred)
        assert out.columns() == frozenset({"z", "b"})
        assert out != pred

    def test_untouched_branches_keep_identity(self):
        class DropNots(PredicateTransformer):
            def visit_not(self, pred):
                return self.visit(pred.operand)

        kept = And((equals("a", 1), equals("b", 2)))
        pred = Or((kept, Not(equals("c", 3))))
        out = DropNots().visit(pred)
        assert any(o is kept for o in out.operands)
        assert equals("c", 3) in out.operands

    def test_rewrite_to_constant(self):
        class FalseOut(PredicateTransformer):
            def visit_comparison(self, pred):
                return FALSE if pred.column == "dead" else pred

        out = FalseOut().visit(And((equals("dead", 1), equals("x", 2))))
        # The smart constructor collapses a FALSE conjunct.
        assert out is FALSE

    def test_comparison_ne_round_trip(self):
        pred = Comparison("a", Op.NE, 5)
        assert PredicateTransformer().visit(pred) is pred
