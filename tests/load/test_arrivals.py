"""Arrival generators: determinism, monotonicity, process shape."""

from __future__ import annotations

import pytest

from repro.load import (
    ARRIVAL_KINDS,
    build_arrivals,
    burst_arrivals,
    constant_arrivals,
    poisson_arrivals,
    ramp_arrivals,
)


class TestDeterminism:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_same_seed_identical_offsets(self, kind):
        first = build_arrivals(kind, 100.0, 300, seed=42)
        second = build_arrivals(kind, 100.0, 300, seed=42)
        assert first.offsets == second.offsets

    @pytest.mark.parametrize("kind", ("poisson", "burst", "ramp"))
    def test_different_seed_differs(self, kind):
        first = build_arrivals(kind, 100.0, 300, seed=1)
        second = build_arrivals(kind, 100.0, 300, seed=2)
        assert first.offsets != second.offsets

    def test_constant_ignores_seed(self):
        first = constant_arrivals(50.0, 100, seed=1)
        second = constant_arrivals(50.0, 100, seed=99)
        assert first.offsets == second.offsets


class TestShape:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_nondecreasing(self, kind):
        schedule = build_arrivals(kind, 200.0, 500, seed=7)
        assert all(
            later >= earlier
            for earlier, later in zip(
                schedule.offsets, schedule.offsets[1:]
            )
        )

    def test_constant_is_exactly_periodic(self):
        schedule = constant_arrivals(4.0, 5)
        assert schedule.offsets == (0.0, 0.25, 0.5, 0.75, 1.0)
        assert schedule.empirical_rate() == pytest.approx(4.0)

    def test_poisson_rate_converges(self):
        schedule = poisson_arrivals(100.0, 5000, seed=3)
        assert schedule.empirical_rate() == pytest.approx(100.0, rel=0.1)

    def test_burst_arrivals_land_in_the_on_phase(self):
        period, duty = 1.0, 0.25
        schedule = burst_arrivals(
            80.0, 1000, seed=5, period=period, duty=duty
        )
        for offset in schedule.offsets:
            within = offset % period
            assert within <= duty * period + 1e-9

    def test_burst_mean_rate_is_preserved(self):
        schedule = burst_arrivals(100.0, 5000, seed=9)
        assert schedule.empirical_rate() == pytest.approx(100.0, rel=0.15)

    def test_ramp_warms_up(self):
        # Early gaps (low intensity) must be larger on average than late
        # gaps (full intensity).
        # 200 arrivals at rate 100 with a 2 s ramp: the first quarter
        # falls inside the warm-up, the last quarter after it.
        schedule = ramp_arrivals(
            100.0, 200, seed=11, ramp_seconds=2.0, start_fraction=0.1
        )
        gaps = [
            later - earlier
            for earlier, later in zip(
                schedule.offsets, schedule.offsets[1:]
            )
        ]
        quarter = len(gaps) // 4
        early = sum(gaps[:quarter]) / quarter
        late = sum(gaps[-quarter:]) / quarter
        assert early > 2.0 * late

    def test_ramp_with_full_start_fraction_is_homogeneous(self):
        flat = ramp_arrivals(100.0, 200, seed=2, start_fraction=1.0)
        poisson = poisson_arrivals(100.0, 200, seed=2)
        assert flat.offsets == pytest.approx(poisson.offsets)


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            build_arrivals("sawtooth", 10.0, 10)

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    @pytest.mark.parametrize("rate", [0.0, -1.0])
    def test_bad_rate(self, kind, rate):
        with pytest.raises(ValueError, match="rate"):
            build_arrivals(kind, rate, 10)

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_bad_count(self, kind):
        with pytest.raises(ValueError, match="count"):
            build_arrivals(kind, 10.0, 0)

    def test_bad_burst_params(self):
        with pytest.raises(ValueError, match="period"):
            burst_arrivals(10.0, 10, period=0.0)
        with pytest.raises(ValueError, match="duty"):
            burst_arrivals(10.0, 10, duty=0.0)
        with pytest.raises(ValueError, match="duty"):
            burst_arrivals(10.0, 10, duty=1.5)

    def test_bad_ramp_params(self):
        with pytest.raises(ValueError, match="ramp_seconds"):
            ramp_arrivals(10.0, 10, ramp_seconds=0.0)
        with pytest.raises(ValueError, match="start_fraction"):
            ramp_arrivals(10.0, 10, start_fraction=0.0)


class TestScheduleProperties:
    def test_params_are_recorded(self):
        schedule = burst_arrivals(10.0, 10, period=2.0, duty=0.5)
        assert dict(schedule.params) == {"period": 2.0, "duty": 0.5}

    def test_count_and_duration(self):
        schedule = constant_arrivals(10.0, 11)
        assert schedule.count == 11
        assert schedule.duration == pytest.approx(1.0)

    def test_single_arrival_empirical_rate_falls_back(self):
        schedule = poisson_arrivals(10.0, 1, seed=0)
        assert schedule.empirical_rate() == 10.0
