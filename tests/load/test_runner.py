"""Open-loop runner: outcome taxonomy, timing semantics, bounded waits."""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from types import SimpleNamespace

import pytest

from repro.exceptions import (
    DeadlineShedError,
    QueueFullError,
    RequestTimeoutError,
)
from repro.load import build_arrivals, run_load
from repro.load.runner import OUTCOMES


def request_factory(timeout=None):
    return lambda index: SimpleNamespace(timeout=timeout)


class ImmediateTransport:
    """Resolves every request instantly with a fixed service time."""

    name = "immediate"

    def __init__(self, service_seconds: float = 0.001) -> None:
        self.service_seconds = service_seconds
        self.submitted = 0

    def submit(self, request) -> "Future":
        self.submitted += 1
        future: "Future" = Future()
        future.set_result(
            SimpleNamespace(execute_seconds=self.service_seconds)
        )
        return future


class ScriptedTransport:
    """Plays back one scripted behavior per submitted request.

    Script entries: ``("ok",)``, ``("raise", error)`` (synchronous),
    ``("fail", error)`` (through the future), ``("hang",)`` (never
    resolves), ``("delay", seconds)`` (resolves on a timer thread).
    """

    name = "scripted"

    def __init__(self, script) -> None:
        self.script = list(script)
        self.index = 0

    def submit(self, request) -> "Future":
        action = self.script[self.index]
        self.index += 1
        if action[0] == "raise":
            raise action[1]
        future: "Future" = Future()
        result = SimpleNamespace(execute_seconds=0.001)
        if action[0] == "ok":
            future.set_result(result)
        elif action[0] == "fail":
            future.set_exception(action[1])
        elif action[0] == "delay":
            timer = threading.Timer(
                action[1], future.set_result, args=(result,)
            )
            timer.daemon = True
            timer.start()
        elif action[0] == "hang":
            pass
        else:  # pragma: no cover - script typo guard
            raise AssertionError(action)
        return future


def fast_schedule(count: int):
    return build_arrivals("constant", 5000.0, count, seed=0)


class TestOutcomes:
    def test_every_request_lands_in_one_bucket(self):
        transport = ScriptedTransport(
            [
                ("ok",),
                ("raise", QueueFullError("full")),
                ("fail", DeadlineShedError("will miss")),
                ("fail", RequestTimeoutError("expired in queue")),
                ("fail", ValueError("boom")),
            ]
        )
        result = run_load(
            transport, fast_schedule(5), request_factory(), grace=1.0
        )
        outcomes = [record.outcome for record in result.records]
        assert outcomes == [
            "ok",
            "shed",
            "shed",
            "queued_timeout",
            "error",
        ]
        counts = result.outcome_counts()
        assert sum(counts.values()) == 5
        assert set(counts) == set(OUTCOMES)

    def test_sync_and_future_sheds_are_equivalent(self):
        transport = ScriptedTransport(
            [("raise", QueueFullError("full")),
             ("fail", QueueFullError("full"))]
        )
        result = run_load(
            transport, fast_schedule(2), request_factory(), grace=1.0
        )
        assert [r.outcome for r in result.records] == ["shed", "shed"]
        # A synchronous shed still resolves with a completion time: the
        # caller learned the answer at issue time.
        assert all(r.completed is not None for r in result.records)
        assert all(r.error for r in result.records)

    def test_late_completion_is_a_miss_not_ok(self):
        transport = ScriptedTransport([("delay", 0.15)])
        result = run_load(
            transport,
            fast_schedule(1),
            request_factory(timeout=0.05),
            grace=2.0,
        )
        record = result.records[0]
        assert record.outcome == "late"
        assert record.latency >= 0.15

    def test_slow_completion_without_deadline_is_ok(self):
        transport = ScriptedTransport([("delay", 0.05)])
        result = run_load(
            transport, fast_schedule(1), request_factory(), grace=2.0
        )
        assert result.records[0].outcome == "ok"

    def test_hung_request_errors_after_grace(self):
        transport = ScriptedTransport([("hang",)])
        started = time.perf_counter()
        result = run_load(
            transport, fast_schedule(1), request_factory(), grace=0.2
        )
        elapsed = time.perf_counter() - started
        record = result.records[0]
        assert record.outcome == "error"
        assert record.completed is None
        assert record.latency is None
        assert "unresolved" in record.error
        assert elapsed < 5.0


class TestTiming:
    def test_latency_is_measured_from_the_scheduled_time(self):
        # Requests scheduled in the past (the loop runs behind a 0-gap
        # schedule) must charge the lag to latency, not hide it.
        transport = ImmediateTransport()
        schedule = build_arrivals("constant", 1e6, 50, seed=0)
        result = run_load(
            transport, schedule, request_factory(), grace=1.0
        )
        for record in result.records:
            assert record.issued >= record.scheduled - 1e-9
            assert record.issue_lag >= -1e-9
            assert record.latency == pytest.approx(
                record.completed - record.scheduled
            )

    def test_open_loop_issues_everything(self):
        transport = ImmediateTransport()
        schedule = build_arrivals("poisson", 2000.0, 100, seed=1)
        result = run_load(
            transport, schedule, request_factory(), grace=1.0
        )
        assert transport.submitted == 100
        assert len(result.records) == 100
        assert result.duration >= schedule.offsets[-1]

    def test_queue_seconds_complements_service(self):
        transport = ImmediateTransport(service_seconds=0.002)
        result = run_load(
            transport, fast_schedule(5), request_factory(), grace=1.0
        )
        for record in result.records:
            assert record.service_seconds == pytest.approx(0.002)
            assert record.queue_seconds is not None
            assert record.queue_seconds >= 0.0


class TestInputs:
    def test_request_sequence_must_match_schedule(self):
        transport = ImmediateTransport()
        with pytest.raises(ValueError, match="scheduled arrivals"):
            run_load(
                transport,
                fast_schedule(3),
                [SimpleNamespace(timeout=None)] * 2,
            )

    def test_negative_grace_rejected(self):
        with pytest.raises(ValueError, match="grace"):
            run_load(
                ImmediateTransport(),
                fast_schedule(1),
                request_factory(),
                grace=-1.0,
            )

    def test_keep_results_controls_retention(self):
        transport = ImmediateTransport()
        kept = run_load(
            transport,
            fast_schedule(2),
            request_factory(),
            grace=1.0,
            keep_results=True,
        )
        dropped = run_load(
            transport,
            fast_schedule(2),
            request_factory(),
            grace=1.0,
        )
        assert all(r.result is not None for r in kept.records)
        assert all(r.result is None for r in dropped.records)
        # service time survives either way
        assert all(
            r.service_seconds is not None for r in dropped.records
        )
