"""SLO summarizer: percentiles, jitter, goodput, rate accounting."""

from __future__ import annotations

import pytest

from repro.load import build_arrivals, summarize_load
from repro.load.runner import LoadResult, RequestRecord


def record(
    index,
    outcome,
    scheduled=0.0,
    issued=None,
    completed=None,
    service=None,
):
    latency = None if completed is None else completed - scheduled
    return RequestRecord(
        index=index,
        scheduled=scheduled,
        issued=scheduled if issued is None else issued,
        completed=completed,
        outcome=outcome,
        latency=latency,
        service_seconds=service,
    )


def make_result(records, duration=10.0, rate=10.0):
    schedule = build_arrivals(
        "constant", rate, max(len(records), 1), seed=0
    )
    return LoadResult(
        schedule=schedule, records=tuple(records), duration=duration
    )


class TestCounts:
    def test_outcomes_and_rates(self):
        records = [
            record(0, "ok", scheduled=0.0, completed=0.1, service=0.05),
            record(1, "ok", scheduled=0.1, completed=0.3, service=0.05),
            record(2, "late", scheduled=0.2, completed=0.9, service=0.05),
            record(3, "shed", scheduled=0.3, completed=0.31),
            record(4, "queued_timeout", scheduled=0.4, completed=0.9),
            record(5, "error", scheduled=0.5),
        ]
        report = summarize_load(
            make_result(records, duration=2.0), publish=False
        )
        assert report.requests == 6
        assert report.ok == 2
        assert report.late == 1
        assert report.shed == 1
        assert report.queued_timeout == 1
        assert report.errors == 1
        assert report.completed == 3
        assert report.goodput == pytest.approx(2 / 2.0)
        assert report.miss_rate == pytest.approx(2 / 6)
        assert report.shed_rate == pytest.approx(1 / 6)

    def test_empty_run(self):
        report = summarize_load(
            make_result([], duration=1.0), publish=False
        )
        assert report.requests == 0
        assert report.goodput == 0.0
        assert report.miss_rate == 0.0
        assert report.latency == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


class TestLatency:
    def test_percentiles_over_completed_only(self):
        records = [
            record(i, "ok", scheduled=0.0, completed=0.1 * (i + 1))
            for i in range(9)
        ] + [record(9, "shed", scheduled=0.0, completed=0.0)]
        report = summarize_load(make_result(records), publish=False)
        # completed latencies are 0.1..0.9; the shed's zero latency must
        # not drag the percentiles down.
        assert report.latency["p50"] == pytest.approx(0.5)
        assert report.latency_max == pytest.approx(0.9)
        assert report.latency_mean == pytest.approx(0.5)

    def test_queue_and_service_split(self):
        records = [
            record(
                0, "ok", scheduled=0.0, completed=0.3, service=0.1
            )
        ]
        report = summarize_load(make_result(records), publish=False)
        assert report.service_mean == pytest.approx(0.1)
        assert report.queue_mean == pytest.approx(0.2)


class TestJitter:
    def test_steady_latency_has_zero_jitter(self):
        records = [
            record(i, "ok", scheduled=0.1 * i, completed=0.1 * i + 0.05)
            for i in range(10)
        ]
        report = summarize_load(make_result(records), publish=False)
        assert report.jitter["p99"] == pytest.approx(0.0)

    def test_alternating_latency_has_jitter(self):
        # Same p50-ish latency band, violently alternating: jitter must
        # expose what the latency percentiles alone would blur.
        records = []
        for i in range(10):
            latency = 0.01 if i % 2 == 0 else 0.2
            records.append(
                record(
                    i,
                    "ok",
                    scheduled=0.1 * i,
                    completed=0.1 * i + latency,
                )
            )
        report = summarize_load(make_result(records), publish=False)
        assert report.jitter["p50"] == pytest.approx(0.19)


class TestPublish:
    def test_gauges_published(self, monkeypatch):
        from repro.load import slo as slo_module

        published = {}
        monkeypatch.setattr(
            slo_module.obs,
            "set_gauge",
            lambda name, value: published.__setitem__(name, value),
        )
        records = [record(0, "ok", scheduled=0.0, completed=0.1)]
        report = summarize_load(make_result(records, duration=1.0))
        assert published["load.goodput"] == report.goodput
        assert published["load.latency.p99"] == report.latency["p99"]
        assert published["load.jitter.p50"] == report.jitter["p50"]
        assert published["load.offered_rate"] == report.offered_rate

    def test_to_dict_round_trips_fields(self):
        records = [record(0, "ok", scheduled=0.0, completed=0.1)]
        report = summarize_load(make_result(records), publish=False)
        payload = report.to_dict()
        assert payload["requests"] == 1
        assert payload["ok"] == 1
        assert payload["latency_seconds"]["p99"] == report.latency["p99"]
        assert payload["jitter_seconds"]["p50"] == report.jitter["p50"]
