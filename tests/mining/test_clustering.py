"""Unit tests for k-means, Gaussian mixtures, and density clustering."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.mining.base import ModelKind
from repro.mining.density import (
    NOISE_LABEL,
    DensityClusterLearner,
    DensityClusterModel,
)
from repro.mining.gmm import GaussianMixtureLearner, GaussianMixtureModel
from repro.mining.kmeans import KMeansLearner, KMeansModel


def blob_rows(centers, n_per=80, spread=0.7, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for cx, cy in centers:
        for _ in range(n_per):
            rows.append(
                {
                    "x": float(rng.normal(cx, spread)),
                    "y": float(rng.normal(cy, spread)),
                }
            )
    return rows


THREE_BLOBS = ((0.0, 0.0), (10.0, 0.0), (5.0, 9.0))


class TestKMeans:
    def test_recovers_blobs(self):
        rows = blob_rows(THREE_BLOBS)
        model = KMeansLearner(("x", "y"), 3, seed=1).fit(rows)
        found = sorted(
            tuple(np.round(c, 0)) for c in model.centroids
        )
        expected = sorted(tuple(np.array(c)) for c in THREE_BLOBS)
        for f, e in zip(found, expected):
            assert abs(f[0] - e[0]) <= 1.0
            assert abs(f[1] - e[1]) <= 1.0

    def test_assignment_is_nearest_centroid(self):
        model = KMeansModel(
            "m", "cluster", ("x",), np.array([[0.0], [10.0]]), np.ones((2, 1))
        )
        assert model.predict({"x": 1.0}) == "cluster_0"
        assert model.predict({"x": 9.0}) == "cluster_1"

    def test_weighted_assignment(self):
        # Heavy weight on x for cluster 1 makes it repel mid points.
        model = KMeansModel(
            "m",
            "cluster",
            ("x",),
            np.array([[0.0], [10.0]]),
            np.array([[1.0], [9.0]]),
        )
        # At x=7: d0 = 49, d1 = 9*9 = 81 -> cluster_0 despite being closer
        # to centroid 1 in raw distance.
        assert model.predict({"x": 7.0}) == "cluster_0"

    def test_tie_goes_to_lower_index(self):
        model = KMeansModel(
            "m", "cluster", ("x",), np.array([[0.0], [10.0]]), np.ones((2, 1))
        )
        assert model.predict({"x": 5.0}) == "cluster_0"

    def test_too_few_rows_rejected(self):
        with pytest.raises(ModelError):
            KMeansLearner(("x",), 5).fit([{"x": 1.0}])

    def test_shape_validation(self):
        with pytest.raises(ModelError):
            KMeansModel(
                "m", "c", ("x",), np.array([[0.0]]), np.ones((2, 1))
            )
        with pytest.raises(ModelError):
            KMeansModel(
                "m", "c", ("x",), np.array([[0.0]]), -np.ones((1, 1))
            )

    def test_deterministic_given_seed(self):
        rows = blob_rows(THREE_BLOBS)
        a = KMeansLearner(("x", "y"), 3, seed=4).fit(rows)
        b = KMeansLearner(("x", "y"), 3, seed=4).fit(rows)
        assert np.allclose(a.centroids, b.centroids)

    def test_kind(self):
        rows = blob_rows(THREE_BLOBS)
        model = KMeansLearner(("x", "y"), 3).fit(rows)
        assert model.kind is ModelKind.KMEANS


class TestGaussianMixture:
    def test_recovers_blobs(self):
        rows = blob_rows(THREE_BLOBS, n_per=120)
        model = GaussianMixtureLearner(("x", "y"), 3, seed=2).fit(rows)
        assert model.mixing == pytest.approx([1 / 3] * 3, abs=0.12)
        found = sorted(tuple(np.round(m, 0)) for m in model.means)
        expected = sorted(tuple(np.array(c)) for c in THREE_BLOBS)
        for f, e in zip(found, expected):
            assert abs(f[0] - e[0]) <= 1.5
            assert abs(f[1] - e[1]) <= 1.5

    def test_mixing_must_sum_to_one(self):
        with pytest.raises(ModelError):
            GaussianMixtureModel(
                "g",
                "c",
                ("x",),
                np.array([0.4, 0.4]),
                np.zeros((2, 1)),
                np.ones((2, 1)),
            )

    def test_variances_must_be_positive(self):
        with pytest.raises(ModelError):
            GaussianMixtureModel(
                "g",
                "c",
                ("x",),
                np.array([0.5, 0.5]),
                np.zeros((2, 1)),
                np.zeros((2, 1)),
            )

    def test_assignment_uses_mixing_weight(self):
        model = GaussianMixtureModel(
            "g",
            "c",
            ("x",),
            np.array([0.99, 0.01]),
            np.array([[0.0], [4.0]]),
            np.ones((2, 1)),
        )
        # Midpoint: equal densities, the dominant weight wins.
        assert model.predict({"x": 2.0}) == "cluster_0"

    def test_kind(self):
        rows = blob_rows(THREE_BLOBS)
        model = GaussianMixtureLearner(("x", "y"), 2).fit(rows)
        assert model.kind is ModelKind.GMM


class TestDensityClustering:
    def test_finds_two_components(self):
        rows = blob_rows(((0.0, 0.0), (10.0, 10.0)), n_per=150, spread=0.8)
        model = DensityClusterLearner(
            ("x", "y"), bins=6, density_threshold=3
        ).fit(rows)
        assert len(model.cluster_labels) == 2

    def test_noise_for_sparse_points(self):
        rows = blob_rows(((0.0, 0.0),), n_per=200, spread=0.5)
        rows.append({"x": 40.0, "y": 40.0})
        model = DensityClusterLearner(
            ("x", "y"), bins=8, density_threshold=4
        ).fit(rows)
        assert model.predict({"x": 40.0, "y": 40.0}) == NOISE_LABEL

    def test_cells_disjoint(self):
        rows = blob_rows(((0.0, 0.0), (10.0, 10.0)), n_per=100)
        model = DensityClusterLearner(
            ("x", "y"), bins=6, density_threshold=3
        ).fit(rows)
        seen = set()
        for cells in model.cluster_cells:
            assert not (cells & seen)
            seen |= cells

    def test_cells_for_unknown_label(self):
        rows = blob_rows(((0.0, 0.0),), n_per=100)
        model = DensityClusterLearner(("x", "y"), bins=4).fit(rows)
        with pytest.raises(ModelError):
            model.cells_for("nope")

    def test_noise_label_in_class_labels(self):
        rows = blob_rows(((0.0, 0.0),), n_per=100)
        model = DensityClusterLearner(("x", "y"), bins=4).fit(rows)
        assert NOISE_LABEL in model.class_labels
        assert NOISE_LABEL not in model.cluster_labels

    def test_overlapping_cluster_cells_rejected(self):
        from repro.core.regions import AttributeSpace, BinnedDimension

        space = AttributeSpace((BinnedDimension("x", (0.0,)),))
        with pytest.raises(ModelError):
            DensityClusterModel(
                "d",
                "c",
                space,
                [frozenset({(0,)}), frozenset({(0,)})],
            )
