"""Unit tests for the decision-tree learner and model."""

import pytest

from repro.exceptions import ModelError
from repro.mining.base import ModelKind
from repro.mining.decision_tree import (
    CategoryTest,
    DecisionTreeLearner,
    Leaf,
    NumericTest,
    iter_leaves,
)
from repro.mining.metrics import accuracy

AND_ROWS = [
    {"a": 0, "b": 0, "label": "zero"},
    {"a": 0, "b": 1, "label": "zero"},
    {"a": 1, "b": 0, "label": "zero"},
    {"a": 1, "b": 1, "label": "one"},
] * 10


class TestLearner:
    def test_learns_conjunction(self):
        model = DecisionTreeLearner(("a", "b"), "label", max_depth=4).fit(
            AND_ROWS
        )
        assert accuracy(model, AND_ROWS, "label") == 1.0

    def test_learns_categorical_split(self):
        rows = [
            {"city": c, "label": "fr" if c == "paris" else "other"}
            for c in ("paris", "rome", "berlin", "paris")
        ] * 5
        model = DecisionTreeLearner(("city",), "label").fit(rows)
        assert model.predict({"city": "paris"}) == "fr"
        assert model.predict({"city": "rome"}) == "other"

    def test_max_depth_zero_gives_majority_leaf(self):
        model = DecisionTreeLearner(("a", "b"), "label", max_depth=0).fit(
            AND_ROWS
        )
        assert isinstance(model.root, Leaf)
        assert model.depth() == 0

    def test_customer_accuracy(self, customer_tree, customer_rows):
        assert accuracy(customer_tree, customer_rows, "risk") > 0.9

    def test_empty_training_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeLearner(("a",), "label").fit([])

    def test_missing_target_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeLearner(("a",), "label").fit([{"a": 1}])

    def test_no_features_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeLearner((), "label")

    def test_constant_feature_yields_leaf(self):
        rows = [{"a": 1, "label": "x"}, {"a": 1, "label": "y"}] * 5
        model = DecisionTreeLearner(("a",), "label").fit(rows)
        assert isinstance(model.root, Leaf)

    def test_threshold_subsampling(self):
        rows = [
            {"a": float(i), "label": "low" if i < 500 else "high"}
            for i in range(1000)
        ]
        model = DecisionTreeLearner(
            ("a",), "label", max_thresholds=8
        ).fit(rows)
        assert accuracy(model, rows, "label") > 0.95


class TestModel:
    def test_kind_and_labels(self, customer_tree):
        assert customer_tree.kind is ModelKind.DECISION_TREE
        assert set(customer_tree.class_labels) <= {"low", "medium", "high"}

    def test_predict_requires_columns(self, customer_tree):
        with pytest.raises(ModelError):
            customer_tree.predict({"age": 30})

    def test_iter_leaves_paths_consistent(self, customer_tree):
        for path, leaf in iter_leaves(customer_tree.root):
            assert isinstance(leaf, Leaf)
            for atom in path:
                assert atom.columns() <= set(customer_tree.feature_columns)

    def test_leaf_count_matches_iteration(self, customer_tree):
        assert customer_tree.leaf_count() == sum(
            1 for _ in iter_leaves(customer_tree.root)
        )

    def test_predict_many(self, customer_tree, customer_rows):
        few = customer_rows[:5]
        assert customer_tree.predict_many(few) == [
            customer_tree.predict(r) for r in few
        ]


class TestTests:
    def test_numeric_test(self):
        test = NumericTest("a", 5.0)
        assert test.matches({"a": 5.0})
        assert not test.matches({"a": 5.1})
        assert test.true_predicate().evaluate({"a": 4})
        assert test.false_predicate().evaluate({"a": 6})

    def test_numeric_test_rejects_strings(self):
        with pytest.raises(ModelError):
            NumericTest("a", 5.0).matches({"a": "x"})

    def test_category_test(self):
        test = CategoryTest("c", "paris")
        assert test.matches({"c": "paris"})
        assert not test.matches({"c": "rome"})
        assert test.true_predicate().evaluate({"c": "paris"})
        assert test.false_predicate().evaluate({"c": "rome"})
