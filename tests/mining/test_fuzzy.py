"""Tests for fuzzy c-means (the paper's second ongoing-work extension)."""

import numpy as np
import pytest

from repro.core.cluster_envelope import clustering_space
from repro.core.derive import derive_envelopes
from repro.exceptions import ModelError
from repro.mining.discretized_cluster import DiscretizedClusterModel
from repro.mining.fuzzy import FuzzyCMeansLearner
from repro.mining.kmeans import KMeansModel

from tests.mining.test_clustering import THREE_BLOBS, blob_rows


class TestFuzzyCMeans:
    def test_returns_centroid_model(self):
        rows = blob_rows(THREE_BLOBS)
        model = FuzzyCMeansLearner(("x", "y"), 3, seed=1).fit(rows)
        assert isinstance(model, KMeansModel)
        assert model.n_clusters == 3

    def test_recovers_blobs(self):
        rows = blob_rows(THREE_BLOBS, seed=8)
        model = FuzzyCMeansLearner(("x", "y"), 3, seed=1).fit(rows)
        found = sorted(tuple(np.round(c, 0)) for c in model.centroids)
        expected = sorted(tuple(np.array(c)) for c in THREE_BLOBS)
        for f, e in zip(found, expected):
            assert abs(f[0] - e[0]) <= 1.5
            assert abs(f[1] - e[1]) <= 1.5

    def test_memberships_shape_and_normalization(self):
        rows = blob_rows(THREE_BLOBS, n_per=40)
        learner = FuzzyCMeansLearner(("x", "y"), 3)
        learner.fit(rows)
        memberships = learner.memberships()
        assert memberships.shape == (120, 3)
        assert memberships.sum(axis=1) == pytest.approx(
            np.ones(120), abs=1e-9
        )
        assert (memberships >= 0).all()

    def test_hardened_assignment_is_nearest_centroid(self):
        """argmax membership == nearest centroid — the reduction that makes
        fuzzy clusters fit the Section 3.3 envelope machinery."""
        rows = blob_rows(THREE_BLOBS, n_per=50)
        learner = FuzzyCMeansLearner(("x", "y"), 3, seed=2)
        model = learner.fit(rows)
        memberships = learner.memberships()
        for index, row in enumerate(rows):
            soft = int(memberships[index].argmax())
            hard = model.assign(
                np.array([row["x"], row["y"]], dtype=float)
            )
            assert soft == hard

    def test_memberships_before_fit_rejected(self):
        with pytest.raises(ModelError):
            FuzzyCMeansLearner(("x",), 2).memberships()

    def test_fuzziness_validation(self):
        with pytest.raises(ModelError):
            FuzzyCMeansLearner(("x",), 2, fuzziness=1.0)

    def test_envelopes_through_standard_path(self):
        rows = blob_rows(THREE_BLOBS, seed=9)
        base = FuzzyCMeansLearner(("x", "y"), 3, name="fuzzy").fit(rows)
        space = clustering_space(base, rows, bins=6)
        model = DiscretizedClusterModel(base, space, name="fuzzy")
        envelopes = derive_envelopes(model)
        for row in rows:
            label = model.predict(row)
            assert envelopes[label].predicate.evaluate(row)
