"""Tests for agglomerative clustering (the paper's ongoing-work extension)."""

import numpy as np
import pytest

from repro.core.cluster_envelope import clustering_space
from repro.core.derive import derive_envelopes
from repro.exceptions import ModelError
from repro.mining.discretized_cluster import DiscretizedClusterModel
from repro.mining.hierarchical import AgglomerativeClusterLearner
from repro.mining.kmeans import KMeansModel

from tests.mining.test_clustering import THREE_BLOBS, blob_rows


class TestAgglomerative:
    def test_returns_centroid_model(self):
        rows = blob_rows(THREE_BLOBS)
        learner = AgglomerativeClusterLearner(("x", "y"), 3)
        model = learner.fit(rows)
        assert isinstance(model, KMeansModel)
        assert model.n_clusters == 3

    def test_recovers_blobs(self):
        rows = blob_rows(THREE_BLOBS, seed=4)
        model = AgglomerativeClusterLearner(("x", "y"), 3).fit(rows)
        found = sorted(tuple(np.round(c, 0)) for c in model.centroids)
        expected = sorted(tuple(np.array(c)) for c in THREE_BLOBS)
        for f, e in zip(found, expected):
            assert abs(f[0] - e[0]) <= 1.5
            assert abs(f[1] - e[1]) <= 1.5

    def test_merge_history_is_a_dendrogram(self):
        rows = blob_rows(THREE_BLOBS, n_per=20)
        learner = AgglomerativeClusterLearner(
            ("x", "y"), 3, max_points=60
        )
        learner.fit(rows)
        history = learner.merge_history
        assert len(history) == 60 - 3
        # Merge distances are produced by repeatedly merging the closest
        # pair; each merged id is fresh.
        seen = set(range(60))
        for step in history:
            assert step.left in seen and step.right in seen
            assert step.merged not in seen
            seen.add(step.merged)

    def test_subsampling_cap(self):
        rows = blob_rows(THREE_BLOBS, n_per=300)
        learner = AgglomerativeClusterLearner(
            ("x", "y"), 3, max_points=100
        )
        model = learner.fit(rows)
        assert model.n_clusters == 3

    def test_validation(self):
        with pytest.raises(ModelError):
            AgglomerativeClusterLearner(("x",), 0)
        with pytest.raises(ModelError):
            AgglomerativeClusterLearner(("x",), 10, max_points=5)
        with pytest.raises(ModelError):
            AgglomerativeClusterLearner(("x",), 2).fit(
                [{"x": 1.0}]
            )

    def test_envelopes_via_kmeans_path(self):
        """The cut hierarchy plugs into the Section 3.3 envelope machinery
        unchanged — that is the point of the reduction."""
        rows = blob_rows(THREE_BLOBS, seed=6)
        base = AgglomerativeClusterLearner(
            ("x", "y"), 3, name="agglo"
        ).fit(rows)
        space = clustering_space(base, rows, bins=6)
        model = DiscretizedClusterModel(base, space, name="agglo")
        envelopes = derive_envelopes(model)
        for row in rows:
            label = model.predict(row)
            assert envelopes[label].predicate.evaluate(row)
