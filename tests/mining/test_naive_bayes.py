"""Unit tests for the naive Bayes learner and model."""

import numpy as np
import pytest

from repro.core.regions import AttributeSpace, CategoricalDimension
from repro.exceptions import ModelError
from repro.mining.base import ModelKind
from repro.mining.metrics import accuracy
from repro.mining.naive_bayes import (
    NaiveBayesLearner,
    naive_bayes_from_tables,
)


class TestPaperTable1:
    """The worked example of paper Section 3.2.1, Table 1."""

    # Expected winner for each (d0, d1) combination, from Table 1's cells.
    EXPECTED = {
        (0, 0): "c2", (1, 0): "c2", (2, 0): "c2", (3, 0): "c2",
        (0, 1): "c1", (1, 1): "c1", (2, 1): "c2", (3, 1): "c2",
        (0, 2): "c1", (1, 2): "c1", (2, 2): "c3", (3, 2): "c3",
    }

    def test_all_12_cells(self, paper_table1_nb):
        for cell, expected in self.EXPECTED.items():
            assert (
                paper_table1_nb.class_labels[
                    paper_table1_nb.predict_cell(cell)
                ]
                == expected
            ), cell

    def test_predict_from_rows(self, paper_table1_nb):
        row = {"d0": "m00", "d1": "m11"}
        assert paper_table1_nb.predict(row) == "c1"

    def test_cell_log_scores_match_products(self, paper_table1_nb):
        scores = np.exp(paper_table1_nb.cell_log_scores((0, 0)))
        assert scores == pytest.approx(
            [0.33 * 0.4 * 0.01, 0.5 * 0.1 * 0.7, 0.17 * 0.05 * 0.05]
        )


class TestLearner:
    def test_learns_customer_risk(self, customer_nb, customer_rows):
        assert accuracy(customer_nb, customer_rows, "risk") > 0.8

    def test_empty_training_rejected(self):
        with pytest.raises(ModelError):
            NaiveBayesLearner(("a",), "label").fit([])

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ModelError):
            NaiveBayesLearner(("a",), "label", smoothing=0.0)

    def test_laplace_smoothing_gives_nonzero_probabilities(self):
        rows = [{"a": "x", "label": "p"}, {"a": "y", "label": "q"}]
        model = NaiveBayesLearner(("a",), "label").fit(rows)
        for table in model.log_conditionals:
            assert np.all(np.isfinite(table))

    def test_mixed_feature_kinds(self):
        rows = [
            {"num": float(i), "cat": "a" if i < 10 else "b",
             "label": "low" if i < 10 else "high"}
            for i in range(20)
        ]
        model = NaiveBayesLearner(("num", "cat"), "label", bins=4).fit(rows)
        assert accuracy(model, rows, "label") == 1.0

    def test_explicit_dimensions(self):
        dims = (CategoricalDimension("a", ("x", "y")),)
        rows = [{"a": "x", "label": "p"}, {"a": "y", "label": "q"}] * 3
        model = NaiveBayesLearner(
            ("a",), "label", dimensions=dims
        ).fit(rows)
        assert model.space.dimensions == dims

    def test_explicit_dimensions_must_match_features(self):
        dims = (CategoricalDimension("wrong", ("x",)),)
        with pytest.raises(ModelError):
            NaiveBayesLearner(("a",), "label", dimensions=dims).fit(
                [{"a": "x", "label": "p"}]
            )


class TestTieBreaking:
    def test_tie_goes_to_larger_prior(self):
        """Section 3.2.1: 'Ties are resolved by choosing the class which
        has the higher prior probability.'"""
        space = AttributeSpace((CategoricalDimension("a", ("x", "y")),))
        model = naive_bayes_from_tables(
            "ties",
            "cls",
            space,
            ["minor", "major"],
            [0.3, 0.7],
            # Conditionals chosen so products tie exactly when scaled by
            # the inverse prior ratio: P(x|minor)*0.3 == P(x|major)*0.7.
            [[[0.7, 0.3], [0.3, 0.7]]],
        )
        # Scores: minor: 0.3*0.7 = 0.21; major: 0.7*0.3 = 0.21 -> tie.
        assert model.predict({"a": "x"}) == "major"


class TestValidation:
    def test_mismatched_priors_rejected(self):
        space = AttributeSpace((CategoricalDimension("a", ("x",)),))
        with pytest.raises(ModelError):
            naive_bayes_from_tables(
                "bad", "cls", space, ["c1", "c2"], [1.0], [[[1.0]]]
            )

    def test_mismatched_conditionals_rejected(self):
        space = AttributeSpace((CategoricalDimension("a", ("x", "y")),))
        with pytest.raises(ModelError):
            naive_bayes_from_tables(
                "bad", "cls", space, ["c1"], [1.0], [[[1.0]]]  # 1 member
            )

    def test_kind(self, paper_table1_nb):
        assert paper_table1_nb.kind is ModelKind.NAIVE_BAYES
