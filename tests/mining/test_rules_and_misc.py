"""Unit tests for the rule learner, discretization, interchange, metrics."""


import numpy as np
import pytest

from repro.core.predicates import equals
from repro.core.regions import (
    BinnedDimension,
    CategoricalDimension,
    OrdinalDimension,
)
from repro.exceptions import ModelError, SchemaError
from repro.mining.base import ModelKind
from repro.mining.discretize import (
    BinningMethod,
    equal_frequency_cuts,
    equal_width_cuts,
    infer_dimension,
    make_binned_dimension,
)
from repro.mining.discretized_cluster import DiscretizedClusterModel
from repro.mining.interchange import load_model, model_from_dict, save_model
from repro.mining.kmeans import KMeansModel
from repro.mining.metrics import (
    accuracy,
    confusion_matrix,
    entropy,
    label_selectivities,
)
from repro.mining.rules import Rule, RuleLearner


class TestRuleLearner:
    def test_learns_simple_concept(self):
        rows = [
            {"a": i, "label": "small" if i < 10 else "big"}
            for i in range(20)
        ] * 3
        model = RuleLearner(("a",), "label").fit(rows)
        assert accuracy(model, rows, "label") > 0.9

    def test_default_is_majority_class(self, customer_rules):
        assert customer_rules.default_label == "medium"

    def test_rules_for(self, customer_rules):
        for label in customer_rules.class_labels:
            for rule in customer_rules.rules_for(label):
                assert rule.head == label

    def test_rule_matching(self):
        rule = Rule((equals("city", "paris"),), "fr")
        assert rule.matches({"city": "paris"})
        assert not rule.matches({"city": "rome"})

    def test_empty_training_rejected(self):
        with pytest.raises(ModelError):
            RuleLearner(("a",), "label").fit([])

    def test_kind(self, customer_rules):
        assert customer_rules.kind is ModelKind.RULES


class TestDiscretize:
    def test_equal_width(self):
        cuts = equal_width_cuts([0.0, 10.0], 4)
        assert cuts == [2.5, 5.0, 7.5]

    def test_equal_width_constant_column(self):
        assert equal_width_cuts([3.0, 3.0, 3.0], 4) == []

    def test_equal_frequency(self):
        values = list(range(100))
        cuts = equal_frequency_cuts(values, 4)
        assert len(cuts) == 3
        assert cuts[1] == pytest.approx(49.5, abs=1.0)

    def test_low_cardinality_uses_midpoints(self):
        dim = make_binned_dimension("b", [0.0, 1.0] * 20, 8)
        assert dim.cuts == (0.5,)
        assert dim.member_for_value(0) == 0
        assert dim.member_for_value(1) == 1

    def test_bins_must_be_positive(self):
        with pytest.raises(SchemaError):
            equal_width_cuts([1.0], 0)

    def test_infer_string_column(self):
        dim = infer_dimension("c", ["a", "b", "a"])
        assert isinstance(dim, CategoricalDimension)
        assert dim.values == ("a", "b")

    def test_infer_small_int_column(self):
        dim = infer_dimension("c", [1, 2, 3, 2, 1])
        assert isinstance(dim, OrdinalDimension)

    def test_infer_wide_float_column(self):
        dim = infer_dimension("c", [float(i) for i in range(1000)], bins=6)
        assert isinstance(dim, BinnedDimension)
        assert dim.size == 6

    def test_infer_mixed_column_rejected(self):
        with pytest.raises(SchemaError):
            infer_dimension("c", ["a", 1])

    def test_bounded_dimension(self):
        dim = make_binned_dimension(
            "c",
            [float(i) for i in range(100)],
            4,
            method=BinningMethod.EQUAL_WIDTH,
            bounded=True,
        )
        assert dim.low == 0.0
        assert dim.high == 99.0


class TestInterchange:
    @pytest.mark.parametrize(
        "fixture_name",
        [
            "customer_tree",
            "customer_nb",
            "customer_rules",
            "customer_kmeans",
        ],
    )
    def test_round_trip(self, request, fixture_name, customer_rows):
        model = request.getfixturevalue(fixture_name)
        clone = model_from_dict(model.to_dict())
        for row in customer_rows[:50]:
            assert clone.predict(row) == model.predict(row)

    def test_file_round_trip(self, customer_tree, customer_rows, tmp_path):
        path = tmp_path / "model.json"
        save_model(customer_tree, path)
        clone = load_model(path)
        for row in customer_rows[:20]:
            assert clone.predict(row) == customer_tree.predict(row)

    def test_discretized_cluster_round_trip(self, customer_rows):
        from repro.core.cluster_envelope import clustering_space

        base = KMeansModel(
            "km",
            "cluster",
            ("age", "income"),
            np.array([[30.0, 30_000.0], [60.0, 90_000.0]]),
            np.ones((2, 2)),
        )
        space = clustering_space(base, customer_rows, bins=4)
        model = DiscretizedClusterModel(base, space)
        clone = model_from_dict(model.to_dict())
        for row in customer_rows[:50]:
            assert clone.predict(row) == model.predict(row)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            model_from_dict({"kind": "martian"})


class TestDiscretizedClusterModel:
    def test_all_rows_in_cell_share_prediction(self, customer_rows):
        from repro.core.cluster_envelope import clustering_space

        base = KMeansModel(
            "km",
            "cluster",
            ("age", "income"),
            np.array([[30.0, 30_000.0], [60.0, 90_000.0]]),
            np.ones((2, 2)),
        )
        space = clustering_space(base, customer_rows, bins=4)
        model = DiscretizedClusterModel(base, space)
        by_cell: dict = {}
        for row in customer_rows:
            cell = space.point_for_row(
                {"age": row["age"], "income": row["income"]}
            )
            label = model.predict(row)
            assert by_cell.setdefault(cell, label) == label

    def test_space_mismatch_rejected(self, customer_rows):
        base = KMeansModel(
            "km",
            "cluster",
            ("age", "income"),
            np.zeros((2, 2)),
            np.ones((2, 2)),
        )
        from repro.core.regions import AttributeSpace, BinnedDimension

        wrong = AttributeSpace((BinnedDimension("age", (40.0,)),))
        with pytest.raises(ModelError):
            DiscretizedClusterModel(base, wrong)


class TestMetrics:
    def test_accuracy(self, customer_tree, customer_rows):
        value = accuracy(customer_tree, customer_rows, "risk")
        assert 0.0 <= value <= 1.0

    def test_confusion_matrix_totals(self, customer_tree, customer_rows):
        matrix = confusion_matrix(customer_tree, customer_rows, "risk")
        assert sum(matrix.values()) == len(customer_rows)

    def test_label_selectivities(self):
        result = label_selectivities(["a", "a", "b", "c"])
        assert result == {"a": 0.5, "b": 0.25, "c": 0.25}

    def test_entropy(self):
        assert entropy([0.5, 0.5]) == pytest.approx(1.0)
        assert entropy([1.0, 0.0]) == 0.0
        with pytest.raises(ModelError):
            entropy([-0.1, 1.1])

    def test_accuracy_empty_rejected(self, customer_tree):
        with pytest.raises(ModelError):
            accuracy(customer_tree, [], "risk")
