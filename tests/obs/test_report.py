"""Unit tests for trace-directory summarization (``trace-report``)."""

import json

import pytest

from repro import obs


def write_trace(path, payloads):
    path.write_text(
        "".join(json.dumps(p) + "\n" for p in payloads), encoding="utf-8"
    )


class TestSummarize:
    def test_aggregates_all_record_types(self, tmp_path):
        write_trace(
            tmp_path / "trace_a.jsonl",
            [
                {"type": "span", "name": "optimize", "seconds": 0.5},
                {"type": "span", "name": "optimize", "seconds": 1.5},
                {"type": "span", "name": "derive", "seconds": 0.1},
                {"type": "counter", "name": "memo.hit", "value": 3},
                {"type": "counter", "name": "memo.miss", "value": 1},
                {"type": "gauge", "name": "g", "value": 7},
                {"type": "event", "name": "stripped"},
                {
                    "type": "estimator_accuracy",
                    "estimated": 0.2,
                    "actual": 0.3,
                },
            ],
        )
        summary = obs.summarize(tmp_path)
        assert summary.files == 1
        assert summary.lines == 8
        assert summary.malformed == []
        optimize = summary.spans["optimize"]
        assert optimize.count == 2
        assert optimize.total_seconds == pytest.approx(2.0)
        assert optimize.mean_seconds == pytest.approx(1.0)
        assert optimize.max_seconds == pytest.approx(1.5)
        assert summary.counters == {"memo.hit": 3, "memo.miss": 1}
        assert summary.gauges == {"g": 7}
        assert summary.events == {"stripped": 1}
        assert summary.estimator_records == 1
        assert summary.estimator_error_quantiles["max"] == pytest.approx(0.1)

    def test_merges_files_and_sums_counters(self, tmp_path):
        write_trace(
            tmp_path / "trace_task_b.jsonl",
            [{"type": "counter", "name": "c", "value": 2}],
        )
        write_trace(
            tmp_path / "trace_task_a.jsonl",
            [{"type": "counter", "name": "c", "value": 5}],
        )
        summary = obs.summarize(tmp_path)
        assert summary.files == 2
        assert summary.counters == {"c": 7}
        files = obs.trace_files(tmp_path)
        assert [f.name for f in files] == sorted(f.name for f in files)

    def test_top_spans_ranked_by_total_time(self, tmp_path):
        write_trace(
            tmp_path / "trace_a.jsonl",
            [
                {"type": "span", "name": "fast", "seconds": 0.1},
                {"type": "span", "name": "slow", "seconds": 9.0},
                {"type": "span", "name": "mid", "seconds": 1.0},
            ],
        )
        summary = obs.summarize(tmp_path)
        assert [s.name for s in summary.top_spans(2)] == ["slow", "mid"]

    def test_hit_rates_derived_from_counter_pairs(self, tmp_path):
        write_trace(
            tmp_path / "trace_a.jsonl",
            [
                {"type": "counter", "name": "memo.hit", "value": 3},
                {"type": "counter", "name": "memo.miss", "value": 1},
                {"type": "counter", "name": "lonely.hit", "value": 2},
                {"type": "counter", "name": "unrelated", "value": 9},
            ],
        )
        rates = obs.summarize(tmp_path).hit_rates()
        assert rates == {"memo": 0.75, "lonely": 1.0}

    def test_unknown_record_types_are_forward_compatible(self, tmp_path):
        write_trace(
            tmp_path / "trace_a.jsonl",
            [{"type": "novelty", "payload": 1}],
        )
        summary = obs.summarize(tmp_path)
        assert summary.malformed == []
        assert summary.lines == 1


class TestMalformed:
    @pytest.mark.parametrize(
        "bad_line",
        [
            "{not json",
            '["a", "list"]',
            '{"no": "type"}',
            '{"type": "span", "name": "x"}',
            '{"type": "counter", "name": "x", "value": "NaNish"}',
            '{"type": "estimator_accuracy", "estimated": 0.1}',
        ],
    )
    def test_bad_lines_counted(self, tmp_path, bad_line):
        (tmp_path / "trace_a.jsonl").write_text(
            bad_line + "\n" + '{"type": "gauge", "name": "g", "value": 1}\n'
        )
        summary = obs.summarize(tmp_path)
        assert len(summary.malformed) == 1
        assert summary.gauges == {"g": 1}

    def test_strict_raises(self, tmp_path):
        (tmp_path / "trace_a.jsonl").write_text("nope\n")
        with pytest.raises(obs.TraceError):
            obs.summarize(tmp_path, strict=True)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(obs.TraceError):
            obs.summarize(tmp_path / "absent")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(obs.TraceError):
            obs.summarize(tmp_path)


class TestFormatReport:
    def test_report_mentions_every_section(self, tmp_path):
        write_trace(
            tmp_path / "trace_a.jsonl",
            [
                {"type": "span", "name": "optimize", "seconds": 0.5},
                {"type": "counter", "name": "memo.hit", "value": 3},
                {"type": "counter", "name": "memo.miss", "value": 1},
                {
                    "type": "estimator_accuracy",
                    "estimated": 0.2,
                    "actual": 0.25,
                },
            ],
        )
        text = obs.format_report(obs.summarize(tmp_path))
        assert "Top spans" in text
        assert "optimize" in text
        assert "Estimator accuracy (1 records)" in text
        assert "p50=0.0500" in text
        assert "memo: " in text and "75.0%" in text

    def test_report_renders_empty_summary(self, tmp_path):
        write_trace(
            tmp_path / "trace_a.jsonl",
            [{"type": "event", "name": "only"}],
        )
        text = obs.format_report(obs.summarize(tmp_path))
        assert "(none)" in text


class TestCalibrationSection:
    def _payloads(self):
        return [
            {"type": "counter", "name": "calibration.observation", "value": 4},
            {"type": "counter", "name": "calibration.overlay.hit", "value": 3},
            {"type": "counter", "name": "calibration.overlay.miss", "value": 1},
            {"type": "counter", "name": "plan_cache.recalibration", "value": 2},
            {
                "type": "estimator_accuracy",
                "estimated": 0.30,
                "actual": 0.30,
                "static_estimated": 0.10,
            },
            {
                "type": "estimator_accuracy",
                "estimated": 0.50,
                "actual": 0.45,
                "static_estimated": 0.90,
            },
            # No static_estimated: counts toward the overall quantiles
            # but not the before/after pairs.
            {"type": "estimator_accuracy", "estimated": 0.2, "actual": 0.2},
        ]

    def test_calibration_stats(self, tmp_path):
        write_trace(tmp_path / "trace_a.jsonl", self._payloads())
        summary = obs.summarize(tmp_path)
        calibration = summary.calibration()
        assert calibration["observations"] == 4
        assert calibration["overlay_hits"] == 3
        assert calibration["overlay_misses"] == 1
        assert calibration["recalibrations"] == 2
        assert calibration["overlay_hit_rate"] == pytest.approx(0.75)
        assert calibration["paired_records"] == 2
        # Static errors: |0.1-0.3|=0.2, |0.9-0.45|=0.45; calibrated:
        # 0.0 and 0.05 — calibration shrank both quantiles.
        assert calibration["static_p50"] == pytest.approx(0.325)
        assert calibration["calibrated_p50"] == pytest.approx(0.025)
        assert calibration["calibrated_p90"] < calibration["static_p90"]
        assert summary.estimator_records == 3

    def test_report_renders_calibration_section(self, tmp_path):
        write_trace(tmp_path / "trace_a.jsonl", self._payloads())
        output = obs.format_report(obs.summarize(tmp_path))
        assert "Calibration:" in output
        assert "observations=4" in output
        assert "recalibrations=2" in output
        assert "overlay hit rate: 75.0%" in output
        assert "paired records" in output

    def test_no_calibration_no_section(self, tmp_path):
        write_trace(
            tmp_path / "trace_a.jsonl",
            [{"type": "counter", "name": "plan_cache.hit", "value": 1}],
        )
        summary = obs.summarize(tmp_path)
        assert summary.calibration() == {}
        assert "Calibration:" not in obs.format_report(summary)
