"""The serving section of trace-report."""

import json

from repro import obs


def write_trace(path, payloads):
    path.write_text(
        "".join(json.dumps(p) + "\n" for p in payloads), encoding="utf-8"
    )


SERVING_PAYLOADS = [
    {"type": "span", "name": "serve.request", "seconds": 0.02},
    {"type": "span", "name": "serve.request", "seconds": 0.04},
    {"type": "counter", "name": "serve.request.submitted", "value": 10},
    {"type": "counter", "name": "serve.request.completed", "value": 7},
    {"type": "counter", "name": "serve.request.collapsed", "value": 2},
    {"type": "counter", "name": "serve.request.shed", "value": 1},
    {"type": "counter", "name": "serve.batch.requests", "value": 6},
    {"type": "counter", "name": "serve.batch.calls", "value": 3},
    {"type": "counter", "name": "serve.batch.rows", "value": 600},
    {"type": "counter", "name": "serve.batch.coalesced", "value": 4},
    {"type": "gauge", "name": "serve.queue.depth", "value": 0},
]


class TestServingSection:
    def test_serving_stats(self, tmp_path):
        write_trace(tmp_path / "trace_a.jsonl", SERVING_PAYLOADS)
        summary = obs.summarize(tmp_path)
        serving = summary.serving()
        assert serving["submitted"] == 10
        assert serving["completed"] == 7
        assert serving["collapsed"] == 2
        assert serving["shed"] == 1
        assert serving["batch_calls"] == 3
        assert serving["coalescing_factor"] == 2.0

    def test_serving_section_rendered(self, tmp_path):
        write_trace(tmp_path / "trace_a.jsonl", SERVING_PAYLOADS)
        report = obs.format_report(obs.summarize(tmp_path))
        assert "Serving:" in report
        assert "submitted=10" in report
        assert "coalescing factor 2.00" in report
        assert "requests: n=2" in report

    def test_absent_without_serving_traffic(self, tmp_path):
        write_trace(
            tmp_path / "trace_a.jsonl",
            [{"type": "counter", "name": "plan_cache.hit", "value": 1}],
        )
        summary = obs.summarize(tmp_path)
        assert summary.serving() == {}
        assert "Serving:" not in obs.format_report(summary)
