"""The Transport section of trace-report and per-process shard merging."""

import json

from repro import obs


def write_trace(path, payloads):
    path.write_text(
        "".join(json.dumps(p) + "\n" for p in payloads), encoding="utf-8"
    )


TRANSPORT_PAYLOADS = [
    {"type": "counter", "name": "serve.transport.frames.in", "value": 40},
    {"type": "counter", "name": "serve.transport.frames.out", "value": 38},
    {"type": "counter", "name": "serve.transport.bytes.in", "value": 9000},
    {"type": "counter", "name": "serve.transport.bytes.out", "value": 21000},
    {"type": "counter", "name": "serve.transport.requests.tcp", "value": 12},
    {
        "type": "counter",
        "name": "serve.transport.requests.socketpair",
        "value": 20,
    },
    {"type": "counter", "name": "serve.transport.requests.inproc", "value": 6},
    {"type": "counter", "name": "serve.router.respawn", "value": 1},
    {"type": "gauge", "name": "serve.router.workers", "value": 2},
]


class TestTransportSection:
    def test_transport_stats(self, tmp_path):
        write_trace(tmp_path / "trace_a.jsonl", TRANSPORT_PAYLOADS)
        transport = obs.summarize(tmp_path).transport()
        assert transport["frames_in"] == 40
        assert transport["frames_out"] == 38
        assert transport["bytes_in"] == 9000
        assert transport["bytes_out"] == 21000
        assert transport["requests_tcp"] == 12
        assert transport["requests_socketpair"] == 20
        assert transport["requests_inproc"] == 6
        assert transport["respawns"] == 1

    def test_transport_section_rendered(self, tmp_path):
        write_trace(tmp_path / "trace_a.jsonl", TRANSPORT_PAYLOADS)
        report = obs.format_report(obs.summarize(tmp_path))
        assert "Transport:" in report
        assert "frames: in=40 out=38" in report
        assert "bytes in=9000 out=21000" in report
        assert "requests[inproc]: 6" in report
        assert "requests[socketpair]: 20" in report
        assert "requests[tcp]: 12" in report
        assert "worker respawns: 1" in report

    def test_absent_without_transport_traffic(self, tmp_path):
        write_trace(
            tmp_path / "trace_a.jsonl",
            [{"type": "counter", "name": "plan_cache.hit", "value": 1}],
        )
        summary = obs.summarize(tmp_path)
        assert summary.transport() == {}
        assert "Transport:" not in obs.format_report(summary)


class TestShardMerge:
    """Per-process router worker shards merge deterministically.

    Each worker process writes its own ``trace_serve_worker_<i>.jsonl``;
    ``summarize`` reads shards in sorted filename order, so the merged
    summary (and rendered report) is a pure function of the shard
    *contents*, not of which worker flushed last.
    """

    def shard(self, index, frames, bytes_count):
        return [
            {
                "type": "counter",
                "name": "serve.transport.frames.in",
                "value": frames,
            },
            {
                "type": "counter",
                "name": "serve.transport.bytes.in",
                "value": bytes_count,
            },
            {
                "type": "counter",
                "name": "serve.transport.requests.router",
                "value": frames,
            },
            {
                "type": "event",
                "name": "serve.shard",
                "worker": index,
            },
        ]

    def test_counters_sum_across_shards(self, tmp_path):
        write_trace(
            tmp_path / "trace_serve_worker_0.jsonl", self.shard(0, 10, 1000)
        )
        write_trace(
            tmp_path / "trace_serve_worker_1.jsonl", self.shard(1, 5, 700)
        )
        transport = obs.summarize(tmp_path).transport()
        assert transport["frames_in"] == 15
        assert transport["bytes_in"] == 1700
        assert transport["requests_router"] == 15

    def test_merge_is_write_order_independent(self, tmp_path):
        first = tmp_path / "first"
        second = tmp_path / "second"
        first.mkdir()
        second.mkdir()
        # Same shard contents, written in opposite order.
        write_trace(
            first / "trace_serve_worker_0.jsonl", self.shard(0, 10, 1000)
        )
        write_trace(
            first / "trace_serve_worker_1.jsonl", self.shard(1, 5, 700)
        )
        write_trace(
            second / "trace_serve_worker_1.jsonl", self.shard(1, 5, 700)
        )
        write_trace(
            second / "trace_serve_worker_0.jsonl", self.shard(0, 10, 1000)
        )
        report_first = obs.format_report(obs.summarize(first))
        report_second = obs.format_report(obs.summarize(second))
        assert report_first == report_second
        assert "frames: in=15" in report_first
