"""Unit tests for the span tracer and metrics registry."""

import json
import threading

import pytest

from repro import obs
from repro.obs import trace as trace_module


@pytest.fixture
def clean_obs():
    """Isolate the module-level tracer state around each test."""
    obs.configure(None)
    yield
    obs.configure(None)


def read_lines(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestDisabled:
    def test_disabled_by_default(self, clean_obs):
        assert not obs.enabled()
        assert obs.current() is None
        assert obs.trace_directory() is None

    def test_disabled_span_is_shared_noop(self, clean_obs):
        first = obs.span("anything")
        second = obs.span("else")
        assert first is second  # no allocation on the disabled path
        with first as sp:
            sp.set("k", 1)
            sp.update(a=2)  # must not raise

    def test_disabled_metrics_are_noops(self, clean_obs):
        obs.add_counter("x")
        obs.set_gauge("g", 1.0)
        obs.record("estimator_accuracy", estimated=0.1, actual=0.1)
        obs.event("e")
        obs.flush()
        assert obs.counters_snapshot() == {}


class TestSpans:
    def test_span_emits_json_line(self, clean_obs, tmp_path):
        tracer = obs.configure(tmp_path, label="t")
        with obs.span("phase.one", table="T") as sp:
            sp.set("rows", 7)
        lines = read_lines(tracer.path)
        assert len(lines) == 1
        payload = lines[0]
        assert payload["type"] == "span"
        assert payload["name"] == "phase.one"
        assert payload["seconds"] >= 0.0
        assert payload["attrs"] == {"table": "T", "rows": 7}
        assert "parent_id" not in payload

    def test_nested_spans_record_parentage(self, clean_obs, tmp_path):
        tracer = obs.configure(tmp_path)
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = read_lines(tracer.path)
        # The inner span closes (and is written) first.
        assert inner["name"] == "inner"
        assert outer["name"] == "outer"
        assert inner["parent_id"] == outer["span_id"]
        assert "parent_id" not in outer

    def test_span_ids_unique_across_threads(self, clean_obs, tmp_path):
        tracer = obs.configure(tmp_path)

        def work():
            for _ in range(20):
                with obs.span("threaded"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = [line["span_id"] for line in read_lines(tracer.path)]
        assert len(ids) == 80
        assert len(set(ids)) == 80

    def test_span_closes_on_exception(self, clean_obs, tmp_path):
        tracer = obs.configure(tmp_path)
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        (line,) = read_lines(tracer.path)
        assert line["name"] == "failing"


class TestCountersAndRecords:
    def test_counters_accumulate_and_flush_as_deltas(
        self, clean_obs, tmp_path
    ):
        tracer = obs.configure(tmp_path)
        obs.add_counter("memo.hit")
        obs.add_counter("memo.hit", 2)
        obs.add_counter("memo.miss")
        assert obs.counters_snapshot() == {"memo.hit": 3, "memo.miss": 1}
        obs.flush()
        assert obs.counters_snapshot() == {}
        lines = read_lines(tracer.path)
        assert {
            (line["name"], line["value"]) for line in lines
        } == {("memo.hit", 3), ("memo.miss", 1)}
        # A second flush with nothing accumulated writes nothing.
        obs.flush()
        assert len(read_lines(tracer.path)) == 2

    def test_record_and_gauge_written_immediately(self, clean_obs, tmp_path):
        tracer = obs.configure(tmp_path)
        obs.record("estimator_accuracy", estimated=0.25, actual=0.5)
        obs.set_gauge("batch.size", 2048)
        accuracy, gauge = read_lines(tracer.path)
        assert accuracy["type"] == "estimator_accuracy"
        assert accuracy["estimated"] == 0.25
        assert accuracy["actual"] == 0.5
        assert gauge == {"type": "gauge", "name": "batch.size", "value": 2048}

    def test_unserializable_attrs_stringified(self, clean_obs, tmp_path):
        tracer = obs.configure(tmp_path)
        with obs.span("s", weird={1, 2}):
            pass
        (line,) = read_lines(tracer.path)  # json.dumps(default=str)
        assert isinstance(line["attrs"]["weird"], str)


class TestLifecycle:
    def test_configure_none_disables(self, clean_obs, tmp_path):
        obs.configure(tmp_path)
        assert obs.enabled()
        obs.configure(None)
        assert not obs.enabled()

    def test_reconfigure_closes_previous(self, clean_obs, tmp_path):
        first = obs.configure(tmp_path / "a")
        obs.add_counter("pending")
        obs.configure(tmp_path / "b")
        # The old tracer was flushed on close: the counter reached disk.
        (line,) = read_lines(first.path)
        assert line == {"type": "counter", "name": "pending", "value": 1}
        assert first._closed

    def test_env_var_enables_lazily(self, clean_obs, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.ENV_TRACE_DIR, str(tmp_path))
        monkeypatch.setattr(trace_module, "_ENV_CHECKED", False)
        assert obs.enabled()
        assert obs.trace_directory() == tmp_path

    def test_explicit_configure_beats_env(
        self, clean_obs, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(obs.ENV_TRACE_DIR, str(tmp_path / "env"))
        obs.configure(tmp_path / "explicit")
        assert obs.trace_directory() == tmp_path / "explicit"

    def test_forked_child_never_writes_parent_file(
        self, clean_obs, tmp_path
    ):
        tracer = obs.configure(tmp_path)
        with obs.span("parent.before"):
            pass
        before = tracer.path.read_text()
        # Simulate the fork: the inherited tracer's recorded pid no longer
        # matches the current process.
        tracer._pid += 1
        with obs.span("child.after"):
            pass
        tracer.set_gauge("g", 1)
        assert tracer.path.read_text() == before

    def test_close_is_idempotent(self, clean_obs, tmp_path):
        tracer = obs.configure(tmp_path)
        obs.add_counter("c")
        tracer.close()
        tracer.close()
        (line,) = read_lines(tracer.path)
        assert line["name"] == "c"
        # Emissions after close are dropped, not errors.
        tracer.set_gauge("late", 1)
        assert len(read_lines(tracer.path)) == 1

    def test_label_names_the_file(self, clean_obs, tmp_path):
        tracer = obs.configure(tmp_path, label="task_adult__tree")
        assert tracer.path.name == "trace_task_adult__tree.jsonl"
