"""Property-based tests of the predicate and region algebra (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.covering import cover_cells
from repro.core.normalize import simplify, to_dnf, to_nnf
from repro.core.predicates import (
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Predicate,
    conjunction,
    disjunction,
    negate,
)
from repro.core.regions import (
    AttributeSpace,
    OrdinalDimension,
    coarsen_regions,
    merge_regions,
)
from repro.exceptions import NormalizationError
from repro.sql.compiler import compile_predicate

COLUMNS = ("a", "b", "c")


@st.composite
def atoms(draw) -> Predicate:
    column = draw(st.sampled_from(COLUMNS))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        op = draw(st.sampled_from(list(Op)))
        value = draw(st.integers(0, 10))
        return Comparison(column, op, value)
    if kind == 1:
        values = draw(
            st.lists(st.integers(0, 10), min_size=1, max_size=4, unique=True)
        )
        return InSet(column, tuple(values))
    low = draw(st.integers(0, 8))
    high = draw(st.integers(low, 10))
    return Interval(
        column,
        low,
        high,
        low_closed=draw(st.booleans()),
        high_closed=draw(st.booleans()),
    )


def predicates(max_depth: int = 3):
    return st.recursive(
        atoms(),
        lambda children: st.one_of(
            st.builds(
                lambda xs: conjunction(xs),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(
                lambda xs: disjunction(xs),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(Not, children),
        ),
        max_leaves=8,
    )


@st.composite
def rows(draw):
    return {c: draw(st.integers(-2, 12)) for c in COLUMNS}


def safe_evaluate(pred, row):
    # Interval semantics with open bounds on equal endpoints can make an
    # empty Interval; our constructors reject those, so evaluation is total.
    return pred.evaluate(row)


class TestNormalizationEquivalence:
    @given(predicates(), st.lists(rows(), min_size=5, max_size=10))
    @settings(max_examples=150, deadline=None)
    def test_nnf_preserves_semantics(self, pred, sample):
        nnf = to_nnf(pred)
        for row in sample:
            assert safe_evaluate(pred, row) == safe_evaluate(nnf, row)

    @given(predicates(), st.lists(rows(), min_size=5, max_size=10))
    @settings(max_examples=150, deadline=None)
    def test_dnf_preserves_semantics(self, pred, sample):
        try:
            dnf = to_dnf(pred, max_terms=500)
        except NormalizationError:
            return
        for row in sample:
            assert safe_evaluate(pred, row) == safe_evaluate(dnf, row)

    @given(predicates(), st.lists(rows(), min_size=5, max_size=10))
    @settings(max_examples=150, deadline=None)
    def test_simplify_preserves_semantics(self, pred, sample):
        simplified = simplify(pred)
        for row in sample:
            assert safe_evaluate(pred, row) == safe_evaluate(
                simplified, row
            )

    @given(predicates(), rows())
    @settings(max_examples=100, deadline=None)
    def test_negation_is_complement(self, pred, row):
        assert safe_evaluate(negate(pred), row) == (
            not safe_evaluate(pred, row)
        )


class TestSQLAgreement:
    @given(predicates(), st.lists(rows(), min_size=3, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_compiled_sql_matches_evaluate(self, pred, sample):
        import sqlite3

        connection = sqlite3.connect(":memory:")
        connection.execute(
            "CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER)"
        )
        connection.executemany(
            "INSERT INTO t VALUES (?, ?, ?)",
            [(row["a"], row["b"], row["c"]) for row in sample],
        )
        sql = f"SELECT COUNT(*) FROM t WHERE {compile_predicate(pred)}"
        via_sql = connection.execute(sql).fetchone()[0]
        via_eval = sum(1 for row in sample if safe_evaluate(pred, row))
        assert via_sql == via_eval


@st.composite
def grids_and_cells(draw):
    n_dims = draw(st.integers(1, 3))
    sizes = [draw(st.integers(2, 4)) for _ in range(n_dims)]
    space = AttributeSpace(
        tuple(
            OrdinalDimension(f"d{i}", tuple(range(sizes[i])))
            for i in range(n_dims)
        )
    )
    all_cells = list(space.iter_cells())
    chosen = draw(
        st.lists(st.sampled_from(all_cells), min_size=0, max_size=12)
    )
    return space, set(chosen)


class TestCoveringProperties:
    @given(grids_and_cells())
    @settings(max_examples=120, deadline=None)
    def test_cover_is_exact(self, case):
        space, cells = case
        regions = cover_cells(space, cells)
        covered = {
            cell for region in regions for cell in region.iter_cells()
        }
        assert covered == cells

    @given(grids_and_cells())
    @settings(max_examples=120, deadline=None)
    def test_merge_preserves_cells(self, case):
        space, cells = case
        regions = cover_cells(space, cells, merge=False)
        merged = merge_regions(regions)
        covered = {
            cell for region in merged for cell in region.iter_cells()
        }
        assert covered == cells

    @given(grids_and_cells(), st.integers(1, 4))
    @settings(max_examples=120, deadline=None)
    def test_coarsen_is_superset(self, case, budget):
        space, cells = case
        regions = cover_cells(space, cells)
        if not regions:
            return
        coarse = coarsen_regions(regions, budget)
        assert len(coarse) <= max(budget, 1)
        covered = {
            cell for region in coarse for cell in region.iter_cells()
        }
        assert cells <= covered

    @given(grids_and_cells())
    @settings(max_examples=60, deadline=None)
    def test_region_predicates_match_membership(self, case):
        space, cells = case
        regions = cover_cells(space, cells)
        for region in regions:
            pred = region.to_predicate(space)
            for cell in space.iter_cells():
                row = {
                    dim.name: dim.values[member]
                    for dim, member in zip(space.dimensions, cell)
                }
                assert pred.evaluate(row) == region.contains(cell)
