"""Property tests of the arrival generators (hypothesis).

Three laws every arrival process must uphold for arbitrary
``(kind, rate, count, seed)``:

1. **Reproducibility** — the same inputs produce the identical offset
   tuple, float for float.  The load bench's determinism gate rests on
   this.
2. **Monotonicity** — offsets are nondecreasing and nonnegative: the
   time-rescaling construction maps a sorted unit process through a
   monotone inverse intensity, so any inversion bug shows up here.
3. **Rate convergence** — evaluating each kind's integrated intensity
   ``Λ`` at the last offset recovers the unit-process total ``S_n``,
   which concentrates around ``n`` (Gamma(n, 1): mean ``n``, standard
   deviation ``sqrt(n)``).  Asserting ``|Λ(t_n) - n| <= 6·sqrt(n)``
   checks both that the empirical rate converges to the configured mean
   rate and that each generator inverted its ``Λ`` correctly — an
   inversion that is monotone but wrong (say, off by the duty factor)
   fails this bound immediately.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.load import ARRIVAL_KINDS, build_arrivals

kinds = st.sampled_from(ARRIVAL_KINDS)
rates = st.floats(
    min_value=0.5,
    max_value=1000.0,
    allow_nan=False,
    allow_infinity=False,
)
counts = st.integers(min_value=2, max_value=400)
seeds = st.integers(min_value=0, max_value=2**32 - 1)

#: Default shape parameters, mirrored from the generators' signatures.
BURST_PERIOD = 1.0
BURST_DUTY = 0.25
RAMP_SECONDS = 2.0
RAMP_START_FRACTION = 0.1


def integrated_intensity(kind: str, rate: float, t: float) -> float:
    """``Λ(t)`` for each kind's default-parameter intensity."""
    if kind in ("constant", "poisson"):
        return rate * t
    if kind == "burst":
        whole = math.floor(t / BURST_PERIOD)
        frac = t - whole * BURST_PERIOD
        rate_on = rate / BURST_DUTY
        return (
            whole * rate * BURST_PERIOD
            + min(frac, BURST_DUTY * BURST_PERIOD) * rate_on
        )
    if kind == "ramp":
        r0 = rate * RAMP_START_FRACTION
        slope = (rate - r0) / RAMP_SECONDS
        if t <= RAMP_SECONDS:
            return r0 * t + slope * t * t / 2.0
        ramp_mass = RAMP_SECONDS * (r0 + rate) / 2.0
        return ramp_mass + (t - RAMP_SECONDS) * rate
    raise AssertionError(kind)


@settings(max_examples=60, deadline=None)
@given(kind=kinds, rate=rates, count=counts, seed=seeds)
def test_same_seed_reproduces_identical_schedules(
    kind, rate, count, seed
):
    first = build_arrivals(kind, rate, count, seed)
    second = build_arrivals(kind, rate, count, seed)
    assert first.offsets == second.offsets
    assert first == second


@settings(max_examples=60, deadline=None)
@given(kind=kinds, rate=rates, count=counts, seed=seeds)
def test_offsets_are_nonnegative_and_nondecreasing(
    kind, rate, count, seed
):
    schedule = build_arrivals(kind, rate, count, seed)
    assert len(schedule.offsets) == count
    assert schedule.offsets[0] >= 0.0
    for earlier, later in zip(schedule.offsets, schedule.offsets[1:]):
        assert later >= earlier
    assert all(math.isfinite(t) for t in schedule.offsets)


@settings(max_examples=60, deadline=None)
@given(
    kind=kinds,
    rate=rates,
    count=st.integers(min_value=50, max_value=400),
    seed=seeds,
)
def test_empirical_rate_converges_to_the_configured_rate(
    kind, rate, count, seed
):
    schedule = build_arrivals(kind, rate, count, seed)
    mass = integrated_intensity(kind, rate, schedule.offsets[-1])
    # Λ(t_n) == S_n exactly by construction; S_n ~ Gamma(n, 1) (for
    # ``constant``, S_n = n - 1 exactly), so a 6-sigma band plus one
    # unit of slack never flakes while catching any mis-scaled Λ.
    tolerance = 6.0 * math.sqrt(count) + 1.0
    assert abs(mass - count) <= tolerance
