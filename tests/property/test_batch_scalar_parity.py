"""Property suite: ``evaluate_batch`` ≡ row-wise ``evaluate``, raises included.

The scalar ``Predicate.evaluate`` is the semantics; the batch lowering
is only allowed to be faster.  That contract has two halves this suite
pins down over adversarial payloads (None, bools, integers beyond the
float64-exact bound 2**53, mixed-type columns):

* **value parity** — when every row evaluates cleanly, the batch mask
  equals the scalar loop element-wise, and
* **raise parity** — when the scalar loop raises
  :class:`~repro.exceptions.PredicateError` for some row (a None in an
  ordered comparison, a string compared to a number), the batch call
  raises too, instead of inventing an answer via NaN casts.

Raise parity is stated *without* an estimator: reordering connectives
by selectivity legitimately changes which operand sees a poisoned row
first (scalar short-circuit would do the same under that order).  With
an estimator, value parity is asserted whenever no atom raises on any
row, where ordering provably cannot matter.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.columns import ColumnBatch
from repro.core.predicates import (
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Predicate,
    conjunction,
    disjunction,
)
from repro.exceptions import PredicateError

COLUMNS = ("a", "b", "c")

#: Constants spanning the float64-exact integer bound: equality at or
#: above 2**53 must not be answered through a lossy float cast.
BOUNDARY = 2**53
INT_CONSTANTS = (
    0,
    1,
    7,
    BOUNDARY - 1,
    BOUNDARY,
    BOUNDARY + 1,
    -BOUNDARY,
    -(BOUNDARY + 1),
)


def cell_values():
    """One row cell: the full zoo the scalar algebra accepts."""
    return st.one_of(
        st.none(),
        st.booleans(),
        st.sampled_from(INT_CONSTANTS),
        st.integers(-10, 10),
        st.floats(-1e6, 1e6, allow_nan=False),
        st.sampled_from(("north", "south", "x")),
    )


@st.composite
def rows(draw):
    return {c: draw(cell_values()) for c in COLUMNS}


@st.composite
def atoms(draw) -> Predicate:
    column = draw(st.sampled_from(COLUMNS))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        op = draw(st.sampled_from(list(Op)))
        value = draw(
            st.one_of(
                st.sampled_from(INT_CONSTANTS),
                st.integers(-10, 10),
                st.floats(-100, 100, allow_nan=False),
                st.sampled_from(("north", "south")),
            )
        )
        return Comparison(column, op, value)
    if kind == 1:
        values = draw(
            st.lists(
                st.one_of(
                    st.sampled_from(INT_CONSTANTS),
                    st.integers(-10, 10),
                    st.sampled_from(("north", "x")),
                ),
                min_size=1,
                max_size=4,
                unique=True,
            )
        )
        return InSet(column, tuple(values))
    low = draw(st.integers(-5, 8))
    high = draw(st.integers(low, 12))
    return Interval(
        column,
        low,
        high,
        low_closed=draw(st.booleans()),
        high_closed=draw(st.booleans()),
    )


def predicates():
    return st.recursive(
        atoms(),
        lambda children: st.one_of(
            st.builds(
                lambda xs: conjunction(xs),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(
                lambda xs: disjunction(xs),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(Not, children),
        ),
        max_leaves=6,
    )


def scalar_oracle(pred: Predicate, sample: list[dict]):
    """``(values, None)`` on clean evaluation, ``(None, error)`` on raise."""
    try:
        return [pred.evaluate(row) for row in sample], None
    except PredicateError as error:
        return None, error


def _all_atoms(pred: Predicate):
    children = pred.children()
    if not children:
        yield pred
        return
    for child in children:
        yield from _all_atoms(child)


def _every_atom_clean(pred: Predicate, sample: list[dict]) -> bool:
    try:
        for atom in _all_atoms(pred):
            for row in sample:
                atom.evaluate(row)
    except PredicateError:
        return False
    return True


def _fake_estimator(pred: Predicate) -> float:
    return (hash(pred) % 89) / 89.0


class TestBatchScalarParity:
    @given(predicates(), st.lists(rows(), min_size=0, max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_values_and_raises_match_scalar(self, pred, sample):
        expected, error = scalar_oracle(pred, sample)
        batch = ColumnBatch(sample)
        if error is not None:
            with pytest.raises(PredicateError):
                pred.evaluate_batch(batch)
        else:
            assert list(pred.evaluate_batch(batch)) == expected

    @given(predicates(), st.lists(rows(), min_size=0, max_size=10))
    @settings(max_examples=150, deadline=None)
    def test_estimator_reordering_matches_on_clean_rows(
        self, pred, sample
    ):
        if not _every_atom_clean(pred, sample):
            # Reordering may legally change which operand raises first;
            # raise parity is only stated for the unordered contract.
            return
        expected = [pred.evaluate(row) for row in sample]
        mask = pred.evaluate_batch(
            ColumnBatch(sample), estimator=_fake_estimator
        )
        assert list(mask) == expected

    @given(st.lists(rows(), min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_big_integer_equality_is_exact(self, sample):
        # The regression the float64 fast path must never reintroduce:
        # EQ/NE/IN against constants at or beyond 2**53 decided through
        # a lossy float cast.
        for value in (BOUNDARY, BOUNDARY + 1, -(BOUNDARY + 1)):
            for pred in (
                Comparison("a", Op.EQ, value),
                Comparison("a", Op.NE, value),
                InSet("a", (value,)),
            ):
                expected, error = scalar_oracle(pred, sample)
                assert error is None
                got = list(pred.evaluate_batch(ColumnBatch(sample)))
                assert got == expected, (pred, sample)

    def test_regression_eq_at_exact_float_bound(self):
        # 2**53 and 2**53 + 1 collapse to the same float64; equality
        # decided on the float view returned [True, True].
        sample = [{"a": BOUNDARY}, {"a": BOUNDARY + 1}]
        pred = Comparison("a", Op.EQ, BOUNDARY)
        assert list(pred.evaluate_batch(ColumnBatch(sample))) == [
            True,
            False,
        ]
        assert list(
            Comparison("a", Op.NE, BOUNDARY).evaluate_batch(
                ColumnBatch(sample)
            )
        ) == [False, True]
        assert list(
            InSet("a", (BOUNDARY,)).evaluate_batch(ColumnBatch(sample))
        ) == [True, False]

    def test_regression_none_ordered_comparison_raises_like_scalar(self):
        # Scalar raises PredicateError on `None < 5`; the batch path
        # NaN-cast the column and returned [True, False] instead.
        sample = [{"a": 1}, {"a": None}]
        pred = Comparison("a", Op.LT, 5)
        with pytest.raises(PredicateError):
            [pred.evaluate(row) for row in sample]
        with pytest.raises(PredicateError):
            pred.evaluate_batch(ColumnBatch(sample))

    def test_regression_none_vs_string_raises_typed_error(self):
        # Found by the property suite: `None >= "north"` leaked a raw
        # TypeError out of the scalar path (``_comparable`` only checked
        # numericness parity, and None vs str looked "comparable"),
        # while the batch path raised PredicateError.  Both must raise
        # the typed error.
        sample = [{"a": None}]
        for op in (Op.LT, Op.LE, Op.GT, Op.GE):
            pred = Comparison("a", op, "north")
            with pytest.raises(PredicateError):
                pred.evaluate(sample[0])
            with pytest.raises(PredicateError):
                pred.evaluate_batch(ColumnBatch(sample))

    def test_none_equality_matches_scalar_without_raising(self):
        # EQ/NE over a None-bearing column is *not* an error in the
        # scalar algebra — None simply compares unequal to numbers.
        sample = [{"a": 1}, {"a": None}]
        for pred in (
            Comparison("a", Op.EQ, 1),
            Comparison("a", Op.NE, 1),
            InSet("a", (1, 2)),
        ):
            expected = [pred.evaluate(row) for row in sample]
            got = list(pred.evaluate_batch(ColumnBatch(sample)))
            assert got == expected
