"""Property suite: ``evaluate_batch`` ≡ row-wise ``evaluate``, raises included.

The scalar ``Predicate.evaluate`` is the semantics; the batch lowering
is only allowed to be faster.  That contract has two halves this suite
pins down over adversarial payloads (None, bools, integers beyond the
float64-exact bound 2**53, mixed-type columns):

* **value parity** — when every row evaluates cleanly, the batch mask
  equals the scalar loop element-wise, and
* **raise parity** — when the scalar loop raises
  :class:`~repro.exceptions.PredicateError` for some row (a None in an
  ordered comparison, a string compared to a number), the batch call
  raises too, instead of inventing an answer via NaN casts.

Raise parity is stated *without* an estimator: reordering connectives
by selectivity legitimately changes which operand sees a poisoned row
first (scalar short-circuit would do the same under that order).  With
an estimator, value parity is asserted whenever no atom raises on any
row, where ordering provably cannot matter.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.columns import ColumnBatch
from repro.core.predicates import (
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    Predicate,
    conjunction,
    disjunction,
)
from repro.exceptions import PredicateError
from repro.ir import intern
from repro.ir.batch import BatchLowering, evaluate_batch_naive

COLUMNS = ("a", "b", "c")

#: Constants spanning the float64-exact integer bound: equality at or
#: above 2**53 must not be answered through a lossy float cast.
BOUNDARY = 2**53
INT_CONSTANTS = (
    0,
    1,
    7,
    BOUNDARY - 1,
    BOUNDARY,
    BOUNDARY + 1,
    -BOUNDARY,
    -(BOUNDARY + 1),
)


def cell_values():
    """One row cell: the full zoo the scalar algebra accepts."""
    return st.one_of(
        st.none(),
        st.booleans(),
        st.sampled_from(INT_CONSTANTS),
        st.integers(-10, 10),
        st.floats(-1e6, 1e6, allow_nan=False),
        st.sampled_from(("north", "south", "x")),
    )


@st.composite
def rows(draw):
    return {c: draw(cell_values()) for c in COLUMNS}


@st.composite
def atoms(draw) -> Predicate:
    column = draw(st.sampled_from(COLUMNS))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        op = draw(st.sampled_from(list(Op)))
        value = draw(
            st.one_of(
                st.sampled_from(INT_CONSTANTS),
                st.integers(-10, 10),
                st.floats(-100, 100, allow_nan=False),
                st.sampled_from(("north", "south")),
            )
        )
        return Comparison(column, op, value)
    if kind == 1:
        values = draw(
            st.lists(
                st.one_of(
                    st.sampled_from(INT_CONSTANTS),
                    st.integers(-10, 10),
                    st.sampled_from(("north", "x")),
                ),
                min_size=1,
                max_size=4,
                unique=True,
            )
        )
        return InSet(column, tuple(values))
    low = draw(st.integers(-5, 8))
    high = draw(st.integers(low, 12))
    return Interval(
        column,
        low,
        high,
        low_closed=draw(st.booleans()),
        high_closed=draw(st.booleans()),
    )


def predicates():
    return st.recursive(
        atoms(),
        lambda children: st.one_of(
            st.builds(
                lambda xs: conjunction(xs),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(
                lambda xs: disjunction(xs),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(Not, children),
        ),
        max_leaves=6,
    )


def scalar_oracle(pred: Predicate, sample: list[dict]):
    """``(values, None)`` on clean evaluation, ``(None, error)`` on raise."""
    try:
        return [pred.evaluate(row) for row in sample], None
    except PredicateError as error:
        return None, error


def _all_atoms(pred: Predicate):
    children = pred.children()
    if not children:
        yield pred
        return
    for child in children:
        yield from _all_atoms(child)


def _every_atom_clean(pred: Predicate, sample: list[dict]) -> bool:
    try:
        for atom in _all_atoms(pred):
            for row in sample:
                atom.evaluate(row)
    except PredicateError:
        return False
    return True


def _fake_estimator(pred: Predicate) -> float:
    return (hash(pred) % 89) / 89.0


class TestBatchScalarParity:
    @given(predicates(), st.lists(rows(), min_size=0, max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_values_and_raises_match_scalar(self, pred, sample):
        expected, error = scalar_oracle(pred, sample)
        batch = ColumnBatch(sample)
        if error is not None:
            with pytest.raises(PredicateError):
                pred.evaluate_batch(batch)
        else:
            assert list(pred.evaluate_batch(batch)) == expected

    @given(predicates(), st.lists(rows(), min_size=0, max_size=10))
    @settings(max_examples=150, deadline=None)
    def test_estimator_reordering_matches_on_clean_rows(
        self, pred, sample
    ):
        if not _every_atom_clean(pred, sample):
            # Reordering may legally change which operand raises first;
            # raise parity is only stated for the unordered contract.
            return
        expected = [pred.evaluate(row) for row in sample]
        mask = pred.evaluate_batch(
            ColumnBatch(sample), estimator=_fake_estimator
        )
        assert list(mask) == expected

    @given(st.lists(rows(), min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_big_integer_equality_is_exact(self, sample):
        # The regression the float64 fast path must never reintroduce:
        # EQ/NE/IN against constants at or beyond 2**53 decided through
        # a lossy float cast.
        for value in (BOUNDARY, BOUNDARY + 1, -(BOUNDARY + 1)):
            for pred in (
                Comparison("a", Op.EQ, value),
                Comparison("a", Op.NE, value),
                InSet("a", (value,)),
            ):
                expected, error = scalar_oracle(pred, sample)
                assert error is None
                got = list(pred.evaluate_batch(ColumnBatch(sample)))
                assert got == expected, (pred, sample)

    def test_regression_eq_at_exact_float_bound(self):
        # 2**53 and 2**53 + 1 collapse to the same float64; equality
        # decided on the float view returned [True, True].
        sample = [{"a": BOUNDARY}, {"a": BOUNDARY + 1}]
        pred = Comparison("a", Op.EQ, BOUNDARY)
        assert list(pred.evaluate_batch(ColumnBatch(sample))) == [
            True,
            False,
        ]
        assert list(
            Comparison("a", Op.NE, BOUNDARY).evaluate_batch(
                ColumnBatch(sample)
            )
        ) == [False, True]
        assert list(
            InSet("a", (BOUNDARY,)).evaluate_batch(ColumnBatch(sample))
        ) == [True, False]

    def test_regression_ordered_comparison_at_exact_float_bound(self):
        # Found by the reordering property: float64 rounds
        # -(2**53 + 1) to -2**53, so `c < -(2**53)` decided on the
        # float view answered False where the scalar algebra says True.
        # Ordered comparisons and interval bounds at or past ±2**53
        # must fall back to exact object-view ordering.
        sample = [
            {"c": -(BOUNDARY + 1)},
            {"c": -BOUNDARY},
            {"c": BOUNDARY},
            {"c": BOUNDARY + 1},
            {"c": 7},
        ]
        preds = [
            Comparison("c", Op.LT, -BOUNDARY),
            Comparison("c", Op.LE, -(BOUNDARY + 1)),
            Comparison("c", Op.GT, BOUNDARY),
            Comparison("c", Op.GE, BOUNDARY + 1),
            Interval("c", -BOUNDARY, BOUNDARY, False, False),
            Interval("c", BOUNDARY + 1, None, True, True),
        ]
        for pred in preds:
            expected, error = scalar_oracle(pred, sample)
            assert error is None
            got = list(pred.evaluate_batch(ColumnBatch(sample)))
            assert got == expected, (pred, got, expected)

    def test_regression_none_ordered_comparison_raises_like_scalar(self):
        # Scalar raises PredicateError on `None < 5`; the batch path
        # NaN-cast the column and returned [True, False] instead.
        sample = [{"a": 1}, {"a": None}]
        pred = Comparison("a", Op.LT, 5)
        with pytest.raises(PredicateError):
            [pred.evaluate(row) for row in sample]
        with pytest.raises(PredicateError):
            pred.evaluate_batch(ColumnBatch(sample))

    def test_regression_none_vs_string_raises_typed_error(self):
        # Found by the property suite: `None >= "north"` leaked a raw
        # TypeError out of the scalar path (``_comparable`` only checked
        # numericness parity, and None vs str looked "comparable"),
        # while the batch path raised PredicateError.  Both must raise
        # the typed error.
        sample = [{"a": None}]
        for op in (Op.LT, Op.LE, Op.GT, Op.GE):
            pred = Comparison("a", op, "north")
            with pytest.raises(PredicateError):
                pred.evaluate(sample[0])
            with pytest.raises(PredicateError):
                pred.evaluate_batch(ColumnBatch(sample))

    def test_none_equality_matches_scalar_without_raising(self):
        # EQ/NE over a None-bearing column is *not* an error in the
        # scalar algebra — None simply compares unequal to numbers.
        sample = [{"a": 1}, {"a": None}]
        for pred in (
            Comparison("a", Op.EQ, 1),
            Comparison("a", Op.NE, 1),
            InSet("a", (1, 2)),
        ):
            expected = [pred.evaluate(row) for row in sample]
            got = list(pred.evaluate_batch(ColumnBatch(sample)))
            assert got == expected


@st.composite
def or_of_ands(draw) -> Predicate:
    """Interned deep ORs of ANDs drawn from a small shared atom pool.

    Sampling disjunct members *with replacement* from a pool of 2–5
    atoms makes duplicate atoms across disjuncts the common case —
    exactly the envelope shape the mask cache exists for — and
    ``intern`` turns that duplication into the pointer identity the
    cache keys on.
    """
    pool = draw(st.lists(atoms(), min_size=2, max_size=5, unique_by=repr))
    disjuncts = []
    for _ in range(draw(st.integers(2, 5))):
        width = draw(st.integers(1, 3))
        members = [draw(st.sampled_from(pool)) for _ in range(width)]
        disjuncts.append(conjunction(members))
    return intern(disjunction(disjuncts))


class TestDisjunctionCompactionParity:
    """OR pending-compaction and the mask cache against the scalar loop."""

    @given(or_of_ands(), st.lists(rows(), min_size=0, max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_deep_or_of_ands_matches_scalar(self, pred, sample):
        # Value parity on clean rows, raise-for-raise otherwise — the
        # cached full-width strategy must fall back to pending-row
        # compaction precisely when the scalar short-circuit loop
        # would have dodged the poisoned rows.
        expected, error = scalar_oracle(pred, sample)
        batch = ColumnBatch(sample)
        if error is not None:
            with pytest.raises(PredicateError):
                pred.evaluate_batch(batch)
        else:
            assert list(pred.evaluate_batch(batch)) == expected

    @given(or_of_ands(), st.lists(rows(), min_size=0, max_size=10))
    @settings(max_examples=150, deadline=None)
    def test_cached_matches_naive_byte_for_byte(self, pred, sample):
        batch = ColumnBatch(sample)
        try:
            naive = evaluate_batch_naive(pred, batch)
        except PredicateError:
            with pytest.raises(PredicateError):
                pred.evaluate_batch(batch)
            return
        cached = pred.evaluate_batch(batch)
        assert cached.dtype == naive.dtype
        assert np.array_equal(cached, naive)

    def test_duplicate_atom_across_disjuncts_hits_the_cache(self):
        shared = Comparison("a", Op.GE, 3)
        pred = intern(Or((
            conjunction([shared, Comparison("b", Op.LT, 5)]),
            conjunction([shared, Comparison("c", Op.GE, 0)]),
        )))
        sample = [{"a": i, "b": i % 4, "c": i - 5} for i in range(8)]
        context = BatchLowering(ColumnBatch(sample))
        mask = context.mask(pred)
        assert context.stats.shared >= 1
        assert list(mask) == [pred.evaluate(row) for row in sample]

    def test_raising_operand_skipped_when_rows_already_settled(self):
        # Canonical operand order puts `a >= 5` first; it accepts every
        # row, so the scalar loop never orders None against 5.  The
        # full-width lowering of `b < 5` raises — the fallback must
        # notice there are no pending rows and answer without raising.
        pred = Or((Comparison("a", Op.GE, 5), Comparison("b", Op.LT, 5)))
        sample = [{"a": 10, "b": None}, {"a": 7, "b": 1}]
        assert [pred.evaluate(row) for row in sample] == [True, True]
        assert list(pred.evaluate_batch(ColumnBatch(sample))) == [
            True,
            True,
        ]

    def test_raising_operand_mid_disjunct_raises_for_raise(self):
        # One undecided row carries the poison: the scalar loop reaches
        # `b < 5` on it and raises, so the batch fallback must too.
        pred = Or((Comparison("a", Op.GE, 5), Comparison("b", Op.LT, 5)))
        sample = [{"a": 10, "b": None}, {"a": 0, "b": None}]
        with pytest.raises(PredicateError):
            [pred.evaluate(row) for row in sample]
        with pytest.raises(PredicateError):
            pred.evaluate_batch(ColumnBatch(sample))

    def test_empty_pending_skips_expensive_operands_entirely(self):
        calls = []

        class Counting(Comparison):
            def evaluate_batch(self, batch, estimator=None):
                calls.append(len(batch))
                return super().evaluate_batch(batch, estimator)

        # `a >= -1000` sorts first canonically and settles every row;
        # the overriding operand must never run on an empty remainder.
        pred = Or((
            Comparison("a", Op.GE, -1000),
            Counting("b", Op.LT, 5),
        ))
        sample = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        assert list(pred.evaluate_batch(ColumnBatch(sample))) == [
            True,
            True,
        ]
        assert calls == []
