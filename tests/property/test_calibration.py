"""Property tests for the calibrated-estimator feedback loop.

Four invariants over hypothesis-generated tables, predicate trees, and
observation sequences:

* a calibrated estimate always lands in ``[0, 1]``, whatever the store
  holds;
* with zero observations the calibrated estimate *is* the static
  estimate (an empty store is exactly the open loop);
* repeated observation of a stable fraction converges the estimate to
  that fraction (EWMA fixed point);
* calibration never changes query results — the executor returns the
  same rows open- and closed-loop, pass after pass.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.catalog import ModelCatalog
from repro.core.optimizer import MiningQuery
from repro.core.predicates import (
    Comparison,
    InSet,
    Not,
    Op,
    conjunction,
)
from repro.core.rewrite import PredictionEquals
from repro.mining.decision_tree import DecisionTreeLearner
from repro.sql.calibration import CalibratedEstimator, CalibrationStore
from repro.sql.database import Database, load_table
from repro.sql.miningext import PredictionJoinExecutor
from repro.sql.plancache import PlanCache
from repro.sql.stats import build_table_stats, estimate_selectivity

from tests.conftest import CUSTOMER_FEATURES, make_customer_rows

COLUMNS = ("a", "b", "flag")


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    rows = [
        {
            "a": draw(st.integers(min_value=-5, max_value=5)),
            "b": draw(
                st.floats(
                    min_value=-10.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                )
            ),
            "flag": draw(st.booleans()),
        }
        for _ in range(n)
    ]
    return rows


def atom_strategy():
    numeric_comparison = st.builds(
        Comparison,
        st.sampled_from(COLUMNS),
        st.sampled_from(list(Op)),
        st.integers(min_value=-6, max_value=6),
    )
    inset = st.builds(
        InSet,
        st.sampled_from(COLUMNS),
        st.frozensets(
            st.integers(min_value=-6, max_value=6), min_size=1, max_size=4
        ),
    )
    return st.one_of(numeric_comparison, inset)


def predicate_strategy():
    return st.recursive(
        atom_strategy(),
        lambda children: st.one_of(
            st.builds(Not, children),
            st.lists(children, min_size=2, max_size=3).map(
                lambda ops: conjunction(ops)
            ),
        ),
        max_leaves=6,
    )


def fractions():
    return st.floats(
        min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
    )


class TestCalibratedEstimateBounds:
    @settings(max_examples=50, deadline=None)
    @given(
        rows=tables(),
        predicate=predicate_strategy(),
        observed=st.lists(fractions(), min_size=0, max_size=5),
    )
    def test_estimate_within_unit_interval(self, rows, predicate, observed):
        stats = build_table_stats("t", rows)
        store = CalibrationStore()
        for fraction in observed:
            store.observe("t", predicate, 0.5, fraction, stats.version)
        estimator = CalibratedEstimator(stats, store)
        assert 0.0 <= estimator(predicate) <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(rows=tables(), predicate=predicate_strategy())
    def test_empty_store_equals_static(self, rows, predicate):
        stats = build_table_stats("t", rows)
        estimator = CalibratedEstimator(stats, CalibrationStore())
        assert estimator(predicate) == estimate_selectivity(
            stats, predicate
        )
        assert estimator.static(predicate) == estimate_selectivity(
            stats, predicate
        )

    @settings(max_examples=50, deadline=None)
    @given(
        rows=tables(),
        predicate=predicate_strategy(),
        fraction=fractions(),
        repeats=st.integers(min_value=1, max_value=6),
    )
    def test_converges_to_observed_fraction(
        self, rows, predicate, fraction, repeats
    ):
        """A stable measured fraction is the EWMA's fixed point: the
        very first observation seeds it, repeats leave it there."""
        stats = build_table_stats("t", rows)
        store = CalibrationStore()
        for _ in range(repeats):
            store.observe("t", predicate, 0.5, fraction, stats.version)
        estimator = CalibratedEstimator(stats, store)
        assert estimator(predicate) == pytest.approx(fraction)


class TestCalibrationNeverChangesResults:
    @pytest.fixture(scope="class")
    def setup(self):
        rows = make_customer_rows(200, seed=13)
        feature_rows = [
            {c: row[c] for c in CUSTOMER_FEATURES} for row in rows
        ]
        db = Database()
        load_table(db, "customers", feature_rows)
        catalog = ModelCatalog()
        catalog.register(
            DecisionTreeLearner(
                CUSTOMER_FEATURES, "risk", max_depth=5, name="m"
            ).fit(rows)
        )
        yield db, catalog
        db.close()

    @pytest.mark.parametrize("label", ["low", "medium", "high"])
    @pytest.mark.parametrize("gate", [None, 0.2, 0.001])
    def test_rows_identical_open_and_closed_loop(self, setup, label, gate):
        """Whatever the gate and however often the loop has run, the
        result rows match the uncalibrated executor's exactly."""
        db, catalog = setup
        query = MiningQuery(
            "customers",
            relational_predicate=Comparison("age", Op.GT, 25),
            mining_predicates=(PredictionEquals("m", label),),
        )
        open_loop = PredictionJoinExecutor(
            db, catalog, selectivity_gate=gate
        )
        closed_loop = PredictionJoinExecutor(
            db,
            catalog,
            selectivity_gate=gate,
            plan_cache=PlanCache(),
            calibration=CalibrationStore(),
        )
        expected = sorted(
            map(repr, open_loop.execute_optimized(query).rows)
        )
        for _ in range(4):
            got = sorted(
                map(repr, closed_loop.execute_optimized(query).rows)
            )
            assert got == expected
