"""Property-based tests of the upper-envelope contract (hypothesis).

The paper's correctness requirement (Section 1): for every class ``c`` of
model ``M``, ``predict(x) = c`` implies ``M_c(x)``.  These tests generate
random models of every supported family and check the contract over the
full grid (naive Bayes) or random rows (others), plus the exactness claims
the paper makes for decision trees and the K=2 bounds.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.derive import (
    naive_bayes_envelopes,
    score_table_from_naive_bayes,
)
from repro.core.nb_bounds import BoundsMode
from repro.core.nb_envelope import derive_envelope, enumerate_envelope_for_table
from repro.core.regions import AttributeSpace, CategoricalDimension
from repro.core.tree_envelope import tree_envelopes
from repro.core.rule_envelope import rule_envelopes
from repro.mining.decision_tree import DecisionTreeLearner
from repro.mining.naive_bayes import naive_bayes_from_tables
from repro.mining.rules import RuleLearner


@st.composite
def random_naive_bayes(draw):
    """A random discrete NB model over 2-4 categorical dimensions."""
    n_classes = draw(st.integers(2, 4))
    n_dims = draw(st.integers(2, 4))
    sizes = [draw(st.integers(2, 4)) for _ in range(n_dims)]
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    space = AttributeSpace(
        tuple(
            CategoricalDimension(
                f"d{i}", tuple(f"v{j}" for j in range(sizes[i]))
            )
            for i in range(n_dims)
        )
    )
    priors = rng.dirichlet(np.ones(n_classes) * 0.8)
    conditionals = [
        rng.dirichlet(np.ones(size) * 0.6, size=n_classes)
        for size in sizes
    ]
    model = naive_bayes_from_tables(
        "random_nb",
        "cls",
        space,
        [f"c{k}" for k in range(n_classes)],
        priors.tolist(),
        [table.tolist() for table in conditionals],
    )
    return model


def row_for_cell(model, cell):
    return {
        dim.name: dim.values[member]
        for dim, member in zip(model.space.dimensions, cell)
    }


class TestNaiveBayesSoundness:
    @given(random_naive_bayes(), st.sampled_from([0, 8, 64, 512]))
    @settings(max_examples=40, deadline=None)
    def test_envelope_covers_every_predicted_cell(self, model, budget):
        """Soundness holds for ANY node budget, including zero."""
        table = score_table_from_naive_bayes(model)
        envelopes = {
            label: derive_envelope(table, label, max_nodes=budget)
            for label in model.class_labels
        }
        for cell in model.space.iter_cells():
            row = row_for_cell(model, cell)
            label = model.predict(row)
            assert envelopes[label].predicate.evaluate(row), (label, row)

    @given(
        random_naive_bayes(),
        st.sampled_from([BoundsMode.SEPARATE, BoundsMode.PAIRWISE]),
    )
    @settings(max_examples=40, deadline=None)
    def test_soundness_under_both_bound_modes(self, model, mode):
        table = score_table_from_naive_bayes(model)
        for label in model.class_labels:
            result = derive_envelope(table, label, bounds_mode=mode)
            target = table.class_index(label)
            for cell in model.space.iter_cells():
                if table.predict_cell(cell) == target:
                    assert result.predicate.evaluate(row_for_cell(model, cell))

    @given(random_naive_bayes())
    @settings(max_examples=25, deadline=None)
    def test_full_budget_matches_enumeration(self, model):
        """With an ample budget the top-down result equals the exact
        enumerate-and-cover result cell for cell."""
        table = score_table_from_naive_bayes(model)
        for label in model.class_labels:
            derived = derive_envelope(
                table, label, max_nodes=4096, max_regions=None
            )
            exact = enumerate_envelope_for_table(table, label)
            for cell in model.space.iter_cells():
                row = row_for_cell(model, cell)
                assert derived.predicate.evaluate(
                    row
                ) == exact.predicate.evaluate(row), (label, row)

    @given(random_naive_bayes())
    @settings(max_examples=25, deadline=None)
    def test_class_envelopes_cover_grid(self, model):
        """The per-class envelopes jointly cover the whole space."""
        envelopes = naive_bayes_envelopes(model)
        for cell in model.space.iter_cells():
            row = row_for_cell(model, cell)
            assert any(
                e.predicate.evaluate(row) for e in envelopes.values()
            )

    @given(random_naive_bayes())
    @settings(max_examples=20, deadline=None)
    def test_two_class_exactness(self, model):
        """Lemma 3.2: for K=2 the fully-refined envelope is exact."""
        if len(model.class_labels) != 2:
            return
        table = score_table_from_naive_bayes(model)
        for label in model.class_labels:
            result = derive_envelope(
                table, label, max_nodes=4096, max_regions=None
            )
            target = table.class_index(label)
            for cell in model.space.iter_cells():
                row = row_for_cell(model, cell)
                assert result.predicate.evaluate(row) == (
                    table.predict_cell(cell) == target
                )


def random_rows(rng, n, n_numeric, n_categorical):
    rows = []
    for _ in range(n):
        row = {}
        for i in range(n_numeric):
            row[f"num{i}"] = float(np.round(rng.uniform(0, 100), 3))
        for i in range(n_categorical):
            row[f"cat{i}"] = str(rng.choice(["a", "b", "c"]))
        row["label"] = str(rng.choice(["x", "y", "z"]))
        rows.append(row)
    return rows


class TestTreeSoundnessOnRandomData:
    @given(
        st.integers(0, 10_000),
        st.integers(1, 3),
        st.integers(0, 2),
        st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_exactness(self, seed, n_numeric, n_categorical, depth):
        rng = np.random.default_rng(seed)
        rows = random_rows(rng, 60, n_numeric, n_categorical)
        features = [f"num{i}" for i in range(n_numeric)] + [
            f"cat{i}" for i in range(n_categorical)
        ]
        model = DecisionTreeLearner(
            features, "label", max_depth=depth
        ).fit(rows)
        envelopes = tree_envelopes(model)
        probes = random_rows(rng, 80, n_numeric, n_categorical)
        for row in rows + probes:
            predicted = model.predict(row)
            for label, envelope in envelopes.items():
                assert envelope.predicate.evaluate(row) == (
                    predicted == label
                )


class TestRuleSoundnessOnRandomData:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_upper_envelope_and_tightened_exactness(self, seed):
        rng = np.random.default_rng(seed)
        rows = random_rows(rng, 80, 2, 1)
        model = RuleLearner(("num0", "num1", "cat0"), "label").fit(rows)
        plain = rule_envelopes(model)
        tightened = rule_envelopes(model, tighten=True)
        probes = random_rows(rng, 60, 2, 1)
        for row in rows + probes:
            predicted = model.predict(row)
            assert plain[predicted].predicate.evaluate(row)
            for label, envelope in tightened.items():
                assert envelope.predicate.evaluate(row) == (
                    predicted == label
                )
