"""Property tests for selectivity estimation and its accuracy records.

Three families of properties over hypothesis-generated tables and
predicate trees:

* :func:`estimate_selectivity` always lands in ``[0, 1]``;
* strengthening a predicate with AND never raises its estimate
  (monotonicity under the independence model);
* the obs layer's estimator-accuracy records reproduce the measured
  actual selectivity *exactly* — the trace is evidence, not an estimate.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core.predicates import (
    Comparison,
    InSet,
    Not,
    Op,
    conjunction,
)
from repro.sql.stats import (
    build_table_stats,
    estimate_selectivity,
    record_estimator_accuracy,
)

COLUMNS = ("a", "b", "flag")


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    rows = [
        {
            "a": draw(st.integers(min_value=-5, max_value=5)),
            "b": draw(
                st.floats(
                    min_value=-10.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                )
            ),
            "flag": draw(st.booleans()),
        }
        for _ in range(n)
    ]
    return rows


def atom_strategy():
    numeric_comparison = st.builds(
        Comparison,
        st.sampled_from(COLUMNS),
        st.sampled_from(list(Op)),
        st.integers(min_value=-6, max_value=6),
    )
    # Ordered comparison against a string raises on evaluation (schema
    # drift), so string constants only appear under (in)equality.
    string_equality = st.builds(
        Comparison,
        st.sampled_from(COLUMNS),
        st.sampled_from([Op.EQ, Op.NE]),
        st.just("stray"),
    )
    inset = st.builds(
        InSet,
        st.sampled_from(COLUMNS),
        st.frozensets(
            st.integers(min_value=-6, max_value=6), min_size=1, max_size=4
        ),
    )
    return st.one_of(numeric_comparison, string_equality, inset)


def predicate_strategy():
    return st.recursive(
        atom_strategy(),
        lambda children: st.one_of(
            st.builds(Not, children),
            st.lists(children, min_size=2, max_size=3).map(
                lambda ops: conjunction(ops)
            ),
        ),
        max_leaves=6,
    )


class TestEstimateBounds:
    @settings(max_examples=60, deadline=None)
    @given(rows=tables(), predicate=predicate_strategy())
    def test_estimate_within_unit_interval(self, rows, predicate):
        stats = build_table_stats("t", rows)
        estimate = estimate_selectivity(stats, predicate)
        assert 0.0 <= estimate <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(
        rows=tables(),
        predicate=predicate_strategy(),
        strengthener=atom_strategy(),
    )
    def test_and_strengthening_never_raises_estimate(
        self, rows, predicate, strengthener
    ):
        stats = build_table_stats("t", rows)
        weaker = estimate_selectivity(stats, predicate)
        stronger = estimate_selectivity(
            stats, conjunction([predicate, strengthener])
        )
        assert stronger <= weaker + 1e-12


class TestAccuracyRecords:
    @settings(max_examples=25, deadline=None)
    @given(rows=tables(), predicate=predicate_strategy())
    def test_record_reproduces_measured_actual_exactly(
        self, rows, predicate, tmp_path_factory
    ):
        directory = tmp_path_factory.mktemp("trace")
        stats = build_table_stats("t", rows)
        estimated = estimate_selectivity(stats, predicate)
        actual = sum(
            1 for row in rows if predicate.evaluate(row)
        ) / len(rows)
        tracer = obs.configure(directory, label="prop")
        try:
            record_estimator_accuracy(
                "t", predicate, estimated, actual, len(rows)
            )
        finally:
            obs.configure(None)
        (line,) = [
            json.loads(text)
            for text in tracer.path.read_text().splitlines()
        ]
        assert line["type"] == "estimator_accuracy"
        assert line["actual"] == actual  # bit-exact, not approximate
        assert line["estimated"] == estimated
        assert line["rows_total"] == len(rows)
        assert line["abs_error"] == abs(estimated - actual)
        # And the report layer aggregates the same error.
        summary = obs.summarize(directory, strict=True)
        assert summary.estimator_records == 1
        assert summary.estimator_error_quantiles["max"] == pytest.approx(
            abs(estimated - actual), abs=0.0
        )
