"""Property tests for the IR simplification pipeline.

The pipeline may rewrite a predicate into any equivalent form, so the
properties are semantic: on every row the simplified predicate must agree
with the original, a second pipeline run must be a fixed point, and a DNF
budget overflow must leave the input untouched.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalize import to_dnf
from repro.core.predicates import (
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Predicate,
    conjunction,
    disjunction,
)
from repro.exceptions import NormalizationError
from repro.ir import fingerprint, intern, simplify_pipeline

COLUMNS = ("a", "b", "c")


@st.composite
def atoms(draw) -> Predicate:
    column = draw(st.sampled_from(COLUMNS))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        op = draw(st.sampled_from(list(Op)))
        value = draw(st.integers(0, 10))
        return Comparison(column, op, value)
    if kind == 1:
        values = draw(
            st.lists(st.integers(0, 10), min_size=1, max_size=4, unique=True)
        )
        return InSet(column, tuple(values))
    low = draw(st.integers(0, 8))
    high = draw(st.integers(low, 10))
    return Interval(
        column,
        low,
        high,
        low_closed=draw(st.booleans()),
        high_closed=draw(st.booleans()),
    )


def predicates():
    return st.recursive(
        atoms(),
        lambda children: st.one_of(
            st.builds(
                lambda xs: conjunction(xs),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(
                lambda xs: disjunction(xs),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(Not, children),
        ),
        max_leaves=8,
    )


@st.composite
def rows(draw):
    return {c: draw(st.integers(-2, 12)) for c in COLUMNS}


class TestPipelineSemantics:
    @given(predicates(), st.lists(rows(), min_size=1, max_size=10))
    @settings(max_examples=150, deadline=None)
    def test_semantics_preserving(self, pred, sample):
        simplified = simplify_pipeline(pred)
        for row in sample:
            assert simplified.evaluate(row) == pred.evaluate(row)

    @given(predicates())
    @settings(max_examples=150, deadline=None)
    def test_idempotent(self, pred):
        once = simplify_pipeline(pred)
        twice = simplify_pipeline(once)
        assert twice == once
        # Both runs intern their output, so the fixed point is the very
        # same object, not just an equal one.
        assert twice is once

    @given(predicates())
    @settings(max_examples=100, deadline=None)
    def test_output_is_interned(self, pred):
        out = simplify_pipeline(pred)
        assert intern(out) is out
        assert fingerprint(out) == fingerprint(simplify_pipeline(pred))


class TestBudgetOverflow:
    @given(predicates(), st.lists(rows(), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_tiny_budget_never_changes_semantics(self, pred, sample):
        # A budget of 1 forces frequent DNF aborts; aborting must return
        # the input predicate unchanged (never a half-rewritten one).
        out = simplify_pipeline(pred, max_terms=1)
        try:
            to_dnf(pred, max_terms=1)
        except NormalizationError:
            assert out == pred
        for row in sample:
            assert out.evaluate(row) == pred.evaluate(row)

    @given(predicates())
    @settings(max_examples=100, deadline=None)
    def test_to_dnf_budget_matches_pipeline_abort(self, pred):
        # to_dnf raises exactly when the pipeline's dnf pass aborts; the
        # pipeline itself swallows the overflow and keeps the input.
        try:
            to_dnf(pred, max_terms=2)
        except NormalizationError:
            assert simplify_pipeline(pred, max_terms=2) == pred
        else:
            # No overflow: the pipeline must still be semantics-preserving
            # (covered above) and idempotent under the same budget.
            once = simplify_pipeline(pred, max_terms=2)
            assert simplify_pipeline(once, max_terms=2) == once
