"""Property-based tests across module boundaries (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.derive import naive_bayes_envelopes
from repro.mining.interchange import model_from_dict
from repro.sql.compiler import compile_predicate
from repro.sql.database import Database, load_table
from repro.sql.stats import build_table_stats, estimate_selectivity

from tests.property.test_envelope_soundness import (
    random_naive_bayes,
    row_for_cell,
)


class TestInterchangeProperties:
    @given(random_naive_bayes())
    @settings(max_examples=30, deadline=None)
    def test_nb_round_trip_preserves_predictions(self, model):
        clone = model_from_dict(model.to_dict())
        for cell in model.space.iter_cells():
            row = row_for_cell(model, cell)
            assert clone.predict(row) == model.predict(row)

    @given(random_naive_bayes())
    @settings(max_examples=20, deadline=None)
    def test_round_tripped_model_derives_identical_envelopes(self, model):
        clone = model_from_dict(model.to_dict())
        original = naive_bayes_envelopes(model)
        cloned = naive_bayes_envelopes(clone)
        for label in model.class_labels:
            for cell in model.space.iter_cells():
                row = row_for_cell(model, cell)
                assert original[label].predicate.evaluate(row) == cloned[
                    label
                ].predicate.evaluate(row)


class TestEnvelopeSQLAgreement:
    @given(random_naive_bayes(), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_envelope_sql_matches_python_evaluation(self, model, seed):
        """Compiled envelope SQL selects exactly the rows the predicate
        accepts — the bridge between the core and sql layers."""
        rng = np.random.default_rng(seed)
        rows = []
        for _ in range(80):
            cell = tuple(
                int(rng.integers(dim.size))
                for dim in model.space.dimensions
            )
            rows.append(row_for_cell(model, cell))
        db = Database()
        load_table(db, "t", rows)
        envelopes = naive_bayes_envelopes(model)
        try:
            for label, envelope in envelopes.items():
                sql_count = db.count("t", envelope.predicate)
                python_count = sum(
                    1 for row in rows if envelope.predicate.evaluate(row)
                )
                assert sql_count == python_count, label
                # And soundness end-to-end on the loaded rows.
                predicted = sum(
                    1 for row in rows if model.predict(row) == label
                )
                assert sql_count >= predicted
        finally:
            db.close()


class TestSelectivityEstimateProperties:
    @given(random_naive_bayes(), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_estimates_are_probabilities(self, model, seed):
        rng = np.random.default_rng(seed)
        rows = []
        for _ in range(60):
            cell = tuple(
                int(rng.integers(dim.size))
                for dim in model.space.dimensions
            )
            rows.append(row_for_cell(model, cell))
        stats = build_table_stats("t", rows)
        for envelope in naive_bayes_envelopes(model).values():
            estimate = estimate_selectivity(stats, envelope.predicate)
            assert 0.0 <= estimate <= 1.0

    @given(random_naive_bayes())
    @settings(max_examples=15, deadline=None)
    def test_envelope_sql_compiles(self, model):
        for envelope in naive_bayes_envelopes(model).values():
            sql = compile_predicate(envelope.predicate)
            assert sql
