"""Property tests of the serving wire codec (hypothesis).

Three laws the protocol layer must uphold under arbitrary input:

1. **Frame streams are fragmentation-proof** — any sequence of frames,
   concatenated back-to-back and fed to a :class:`FrameDecoder` in any
   chunking (including one byte at a time), decodes to exactly the
   frames that were encoded, in order.
2. **Requests round-trip** — ``decode_request(encode_request(r)) == r``
   for generated query and match requests over generated predicate
   trees and row values.
3. **Values survive exactly** — int/str/bool/None and every finite
   float keep both value and type across the wire; NaN round-trips to
   NaN (compared through ``math.isnan``, since ``nan != nan``).
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.optimizer import MiningQuery
from repro.core.predicates import (
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Predicate,
    conjunction,
    disjunction,
)
from repro.core.rewrite import (
    PredictionEquals,
    PredictionIn,
    PredictionJoinColumn,
    PredictionJoinPrediction,
)
from repro.serve.engine import MatchRequest, QueryRequest
from repro.serve.protocol import (
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    FrameDecoder,
    decode_request,
    decode_value,
    encode_frame,
    encode_request,
    encode_value,
)

COLUMNS = ("age", "income", "region")
MODELS = ("risk_tree", "risk_nb")

finite_floats = st.floats(allow_nan=False, allow_infinity=False)

#: Values legal inside predicates (must be mutually orderable per type).
predicate_values = st.one_of(
    st.integers(-1000, 1000),
    st.floats(
        allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
    ),
    st.text(min_size=0, max_size=8),
)

#: Values legal inside rows — anything the codec claims to carry.
row_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**53), 2**53),
    finite_floats,
    st.sampled_from([float("nan"), float("inf"), float("-inf")]),
    st.text(min_size=0, max_size=12),
)


@st.composite
def atoms(draw) -> Predicate:
    column = draw(st.sampled_from(COLUMNS))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return Comparison(
            column, draw(st.sampled_from(list(Op))), draw(predicate_values)
        )
    if kind == 1:
        # Homogeneous value type: InSet sorts its members.
        values = draw(
            st.one_of(
                st.lists(
                    st.integers(-50, 50), min_size=1, max_size=4, unique=True
                ),
                st.lists(
                    st.text(min_size=0, max_size=6),
                    min_size=1,
                    max_size=4,
                    unique=True,
                ),
            )
        )
        return InSet(column, tuple(values))
    low = draw(st.integers(-20, 20))
    high = draw(st.integers(low, 25))
    return Interval(
        column,
        low,
        high,
        low_closed=draw(st.booleans()),
        high_closed=draw(st.booleans()),
    )


def predicate_trees():
    return st.recursive(
        atoms(),
        lambda children: st.one_of(
            st.builds(
                lambda xs: conjunction(xs),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(
                lambda xs: disjunction(xs),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(Not, children),
        ),
        max_leaves=8,
    )


@st.composite
def mining_predicates(draw):
    model = draw(st.sampled_from(MODELS))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return PredictionEquals(model, draw(predicate_values))
    if kind == 1:
        labels = draw(
            st.lists(
                st.text(min_size=1, max_size=6),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        return PredictionIn(model, tuple(labels))
    if kind == 2:
        return PredictionJoinPrediction(MODELS[0], MODELS[1])
    return PredictionJoinColumn(model, draw(st.sampled_from(COLUMNS)))


@st.composite
def query_requests(draw) -> QueryRequest:
    return QueryRequest(
        query=MiningQuery(
            table=draw(st.sampled_from(("customers", "orders"))),
            relational_predicate=draw(predicate_trees()),
            mining_predicates=tuple(
                draw(st.lists(mining_predicates(), max_size=3))
            ),
        ),
        optimize=draw(st.booleans()),
        timeout=draw(st.one_of(st.none(), st.floats(0.001, 60))),
    )


@st.composite
def match_requests(draw) -> MatchRequest:
    rows = tuple(
        draw(
            st.lists(
                st.dictionaries(
                    st.sampled_from(COLUMNS), row_values, max_size=3
                ),
                max_size=4,
            )
        )
    )
    segments = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.text(min_size=1, max_size=8), max_size=3, unique=True
            ).map(tuple),
        )
    )
    return MatchRequest(
        rows=rows,
        segments=segments,
        timeout=draw(st.one_of(st.none(), st.floats(0.001, 60))),
    )


def rows_equivalent(a, b) -> bool:
    """Row equality where NaN equals NaN (in value and type)."""
    if len(a) != len(b):
        return False
    for left, right in zip(a, b):
        if set(left) != set(right):
            return False
        for column in left:
            lv, rv = left[column], right[column]
            if isinstance(lv, float) and math.isnan(lv):
                if not (isinstance(rv, float) and math.isnan(rv)):
                    return False
            elif lv != rv or type(lv) is not type(rv):
                return False
    return True


# ---------------------------------------------------------------------------
# 1. Frame streams survive arbitrary fragmentation
# ---------------------------------------------------------------------------

json_payloads = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**40), 2**40),
        finite_floats,
        st.text(max_size=12),
        st.lists(st.integers(-5, 5), max_size=3),
    ),
    max_size=4,
)

frame_specs = st.lists(
    st.tuples(
        st.sampled_from([KIND_REQUEST, KIND_RESPONSE, KIND_ERROR]),
        st.integers(0, 2**64 - 1),
        json_payloads,
    ),
    max_size=5,
)


@settings(max_examples=60, deadline=None)
@given(specs=frame_specs, data=st.data())
def test_concatenated_frames_survive_any_chunking(specs, data):
    stream = b"".join(
        encode_frame(kind, request_id, payload)
        for kind, request_id, payload in specs
    )
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(0, max(len(stream), 0)),
                max_size=8,
            )
        )
    )
    decoder = FrameDecoder()
    frames = []
    previous = 0
    for cut in cuts + [len(stream)]:
        frames.extend(decoder.feed(stream[previous:cut]))
        previous = cut
    assert len(frames) == len(specs)
    for frame, (kind, request_id, payload) in zip(frames, specs):
        assert frame.kind == kind
        assert frame.request_id == request_id
        assert frame.payload == payload


@settings(max_examples=20, deadline=None)
@given(specs=frame_specs)
def test_frames_survive_byte_by_byte_delivery(specs):
    stream = b"".join(
        encode_frame(kind, request_id, payload)
        for kind, request_id, payload in specs
    )
    decoder = FrameDecoder()
    frames = []
    for i in range(len(stream)):
        frames.extend(decoder.feed(stream[i : i + 1]))
    assert [(f.kind, f.request_id, f.payload) for f in frames] == specs


# ---------------------------------------------------------------------------
# 2. Requests round-trip
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(request=query_requests())
def test_query_requests_round_trip(request):
    payload = encode_frame(KIND_REQUEST, 1, encode_request(request))
    (frame,) = FrameDecoder().feed(payload)
    assert decode_request(frame.payload) == request


@settings(max_examples=80, deadline=None)
@given(request=match_requests())
def test_match_requests_round_trip(request):
    payload = encode_frame(KIND_REQUEST, 1, encode_request(request))
    (frame,) = FrameDecoder().feed(payload)
    decoded = decode_request(frame.payload)
    assert decoded.segments == request.segments
    assert decoded.timeout == request.timeout
    assert rows_equivalent(decoded.rows, request.rows)


# ---------------------------------------------------------------------------
# 3. Value fidelity
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(value=row_values)
def test_values_survive_exactly(value):
    # Through a real frame, so JSON serialization is part of the law.
    stream = encode_frame(KIND_REQUEST, 1, {"v": encode_value(value)})
    (frame,) = FrameDecoder().feed(stream)
    decoded = decode_value(frame.payload["v"])
    if isinstance(value, float) and math.isnan(value):
        assert isinstance(decoded, float) and math.isnan(decoded)
    else:
        assert decoded == value
        assert type(decoded) is type(value)
