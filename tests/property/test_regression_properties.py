"""Property-based tests for the regression-tree range envelopes."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.regression_envelope import regression_range_envelope
from repro.mining.regression_tree import RegressionTreeLearner


def random_regression_rows(seed: int, n: int = 80):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        a = float(np.round(rng.uniform(0, 10), 3))
        b = float(np.round(rng.uniform(-5, 5), 3))
        c = str(rng.choice(["p", "q", "r"]))
        target = 3.0 * a - 2.0 * b + (5.0 if c == "p" else 0.0)
        target += float(rng.normal(0, 1.0))
        rows.append({"a": a, "b": b, "c": c, "y": round(target, 3)})
    return rows


class TestRangeEnvelopeProperties:
    @given(
        st.integers(0, 10_000),
        st.integers(1, 6),
        st.floats(-30, 60),
        st.floats(0, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_exactness_for_any_range(self, seed, depth, low, width):
        rows = random_regression_rows(seed)
        model = RegressionTreeLearner(
            ("a", "b", "c"), "y", max_depth=depth
        ).fit(rows)
        high = low + width
        envelope = regression_range_envelope(model, low, high)
        probes = random_regression_rows(seed + 1)
        for row in rows + probes:
            predicted = model.predict(row)
            assert envelope.predicate.evaluate(row) == (
                low <= predicted <= high
            )

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_leaf_value_ranges_partition_predictions(self, seed):
        """Per-leaf-value envelopes partition rows exactly."""
        rows = random_regression_rows(seed)
        model = RegressionTreeLearner(
            ("a", "b", "c"), "y", max_depth=4
        ).fit(rows)
        envelopes = {
            value: regression_range_envelope(model, value, value)
            for value in model.class_labels
        }
        for row in rows:
            hits = [
                value
                for value, envelope in envelopes.items()
                if envelope.predicate.evaluate(row)
            ]
            assert hits == [model.predict(row)]
