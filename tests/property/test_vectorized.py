"""Property tests: vectorized evaluation equals the scalar oracle.

Two families of properties, both with hypothesis-randomized inputs:

* every registered model family's ``predict_batch`` over a
  :class:`ColumnBatch` equals the scalar ``predict`` loop (including the
  empty and single-row batches), and
* ``Predicate.evaluate_batch`` equals a loop of ``Predicate.evaluate``,
  with and without a selectivity estimator reordering the connectives.

The scalar implementations are the semantics; the vectorized kernels are
only allowed to be faster.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.columns import ColumnBatch
from repro.core.predicates import (
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Predicate,
    conjunction,
    disjunction,
)
from repro.core.regions import AttributeSpace
from repro.mining.decision_tree import DecisionTreeLearner
from repro.mining.density import DensityClusterLearner
from repro.mining.discretize import infer_space_dimensions
from repro.mining.discretized_cluster import DiscretizedClusterModel
from repro.mining.fuzzy import FuzzyCMeansLearner
from repro.mining.gmm import GaussianMixtureLearner
from repro.mining.kmeans import KMeansLearner
from repro.mining.naive_bayes import NaiveBayesLearner
from repro.mining.regression_tree import RegressionTreeLearner
from repro.mining.rules import RuleLearner

from tests.conftest import CUSTOMER_FEATURES, make_customer_rows

GENDERS = ("female", "male")
REGIONS = ("north", "south", "east", "west")
NUMERIC_FEATURES = ("age", "income")


@pytest.fixture(scope="module")
def trained_models():
    """One fitted model per family, all sharing the customer schema."""
    rows = make_customer_rows(300, seed=11)
    kmeans = KMeansLearner(NUMERIC_FEATURES, 3, name="pk").fit(rows)
    gmm = GaussianMixtureLearner(NUMERIC_FEATURES, 2, name="pg").fit(rows)
    space = AttributeSpace(
        tuple(infer_space_dimensions(rows, NUMERIC_FEATURES, bins=5))
    )
    return {
        "decision_tree": DecisionTreeLearner(
            CUSTOMER_FEATURES, "risk", max_depth=6, name="pt"
        ).fit(rows),
        "regression_tree": RegressionTreeLearner(
            ("age", "gender", "region"), "income", max_depth=5, name="pr"
        ).fit(rows),
        "naive_bayes": NaiveBayesLearner(
            CUSTOMER_FEATURES, "risk", bins=5, name="pn"
        ).fit(rows),
        "rules": RuleLearner(CUSTOMER_FEATURES, "risk", name="pu").fit(rows),
        "kmeans": kmeans,
        "fuzzy": FuzzyCMeansLearner(NUMERIC_FEATURES, 3, name="pf").fit(rows),
        "gmm": gmm,
        "density": DensityClusterLearner(
            NUMERIC_FEATURES, bins=6, density_threshold=2, name="pd"
        ).fit(rows),
        "discretized_kmeans": DiscretizedClusterModel(kmeans, space),
        "discretized_gmm": DiscretizedClusterModel(gmm, space),
    }


FAMILIES = (
    "decision_tree",
    "regression_tree",
    "naive_bayes",
    "rules",
    "kmeans",
    "fuzzy",
    "gmm",
    "density",
    "discretized_kmeans",
    "discretized_gmm",
)


@st.composite
def customer_like_rows(draw):
    """Rows over the customer schema, including out-of-training extremes."""
    age = draw(
        st.one_of(
            st.integers(-5, 120),
            st.sampled_from((0, 18, 79, -(10**6), 10**9)),
        )
    )
    income = draw(
        st.one_of(
            st.floats(
                min_value=-1e6,
                max_value=1e12,
                allow_nan=False,
                allow_infinity=False,
            ),
            st.sampled_from((0.0, -0.0, 5e-324, 1e300, -1e300)),
        )
    )
    return {
        "age": age,
        "income": income,
        "gender": draw(st.sampled_from(GENDERS)),
        "region": draw(st.sampled_from(REGIONS)),
    }


class TestModelBatchEqualsScalar:
    @pytest.mark.parametrize("family", FAMILIES)
    @given(sample=st.lists(customer_like_rows(), min_size=0, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_predict_batch_matches_predict(
        self, trained_models, family, sample
    ):
        model = trained_models[family]
        got = model.predict_batch(ColumnBatch(sample))
        want = [model.predict(row) for row in sample]
        assert got.dtype == object
        assert len(got) == len(want)
        # Exact equality, floats included: the batch kernels are required
        # to reduce in the same order as the scalar code.
        assert all(a == b for a, b in zip(got, want))

    @pytest.mark.parametrize("family", FAMILIES)
    def test_empty_and_single_row_batches(self, trained_models, family):
        model = trained_models[family]
        assert len(model.predict_batch(ColumnBatch([]))) == 0
        row = make_customer_rows(1, seed=5)[0]
        out = model.predict_batch(ColumnBatch([row]))
        assert len(out) == 1
        assert out[0] == model.predict(row)

    @pytest.mark.parametrize("family", FAMILIES)
    @given(sample=st.lists(customer_like_rows(), min_size=0, max_size=10))
    @settings(max_examples=15, deadline=None)
    def test_predict_many_matches_scalar_loop(
        self, trained_models, family, sample
    ):
        model = trained_models[family]
        assert model.predict_many(sample) == [
            model.predict(row) for row in sample
        ]

    @pytest.mark.parametrize("family", FAMILIES)
    def test_family_overrides_batch(self, trained_models, family):
        # Every built-in family must provide a real vectorized kernel, not
        # inherit the scalar fallback.
        assert trained_models[family].supports_batch()


# --- predicate algebra --------------------------------------------------

COLUMNS = ("a", "b", "c")


@st.composite
def atoms(draw) -> Predicate:
    column = draw(st.sampled_from(COLUMNS))
    kind = draw(st.integers(0, 2))
    if kind == 0:
        op = draw(st.sampled_from(list(Op)))
        value = draw(st.integers(0, 10))
        return Comparison(column, op, value)
    if kind == 1:
        values = draw(
            st.lists(st.integers(0, 10), min_size=1, max_size=4, unique=True)
        )
        return InSet(column, tuple(values))
    low = draw(st.integers(0, 8))
    high = draw(st.integers(low, 10))
    return Interval(
        column,
        low,
        high,
        low_closed=draw(st.booleans()),
        high_closed=draw(st.booleans()),
    )


def predicates():
    return st.recursive(
        atoms(),
        lambda children: st.one_of(
            st.builds(
                lambda xs: conjunction(xs),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(
                lambda xs: disjunction(xs),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(Not, children),
        ),
        max_leaves=8,
    )


@st.composite
def rows(draw):
    return {c: draw(st.integers(-2, 12)) for c in COLUMNS}


def _fake_estimator(pred: Predicate) -> float:
    """A deterministic but arbitrary selectivity; ordering must not matter."""
    return (hash(pred) % 97) / 97.0


class TestPredicateBatchEqualsScalar:
    @given(predicates(), st.lists(rows(), min_size=0, max_size=12))
    @settings(max_examples=150, deadline=None)
    def test_evaluate_batch_matches_evaluate(self, pred, sample):
        mask = pred.evaluate_batch(ColumnBatch(sample))
        assert mask.dtype == np.bool_
        assert list(mask) == [pred.evaluate(row) for row in sample]

    @given(predicates(), st.lists(rows(), min_size=0, max_size=12))
    @settings(max_examples=150, deadline=None)
    def test_estimator_reordering_preserves_semantics(self, pred, sample):
        mask = pred.evaluate_batch(
            ColumnBatch(sample), estimator=_fake_estimator
        )
        assert list(mask) == [pred.evaluate(row) for row in sample]

    @given(st.lists(st.sampled_from(GENDERS + REGIONS), min_size=0,
                    max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_string_columns(self, values):
        sample = [{"s": v} for v in values]
        batch = ColumnBatch(sample)
        for pred in (
            Comparison("s", Op.EQ, "north"),
            Comparison("s", Op.NE, "female"),
            Comparison("s", Op.GE, "n"),
            InSet("s", ("north", "male")),
            Interval("s", "e", "s", high_closed=False),
        ):
            got = list(pred.evaluate_batch(batch))
            assert got == [pred.evaluate(row) for row in sample]
