"""SegmentCatalog: registration, versioning, interning, retirement."""

import pytest

from repro.core.predicates import (
    And,
    Comparison,
    FalsePredicate,
    Op,
    Or,
    TruePredicate,
)
from repro.exceptions import SegmentError
from repro.mining.decision_tree import DecisionTreeLearner
from repro.segments import SegmentCatalog

from tests.conftest import CUSTOMER_FEATURES, make_customer_rows


def adult():
    return Comparison("age", Op.GE, 18)


def rich():
    return Comparison("income", Op.GE, 50_000.0)


class TestRegistration:
    def test_register_returns_interned_definition(self):
        catalog = SegmentCatalog()
        definition = catalog.register("adults", adult())
        assert definition.name == "adults"
        assert definition.version == 1
        assert definition.source == "predicate"
        assert definition.exact is True
        assert definition.n_atoms == 1
        assert "adults" in catalog
        assert len(catalog) == 1

    def test_reregistration_bumps_segment_version(self):
        catalog = SegmentCatalog()
        catalog.register("s", adult())
        replaced = catalog.register("s", rich())
        assert replaced.version == 2
        assert catalog.definition("s").predicate is replaced.predicate
        assert len(catalog) == 1

    def test_catalog_version_bumps_on_every_mutation(self):
        catalog = SegmentCatalog()
        assert catalog.version == 0
        catalog.register("a", adult())
        catalog.register("b", rich())
        assert catalog.version == 2
        catalog.retire("a")
        assert catalog.version == 3

    def test_equal_subtrees_across_segments_are_identical(self):
        # The property the shared-mask evaluator relies on: interning at
        # registration makes structurally equal subtrees the same object
        # even when callers build them independently.
        catalog = SegmentCatalog()
        first = catalog.register(
            "one", And((Comparison("age", Op.GE, 18), rich()))
        )
        second = catalog.register(
            "two", Or((Comparison("age", Op.GE, 18), adult()))
        )
        atoms_first = {repr(p): p for p in first.predicate.children()}
        if not atoms_first:  # single-atom simplification
            atoms_first = {repr(first.predicate): first.predicate}
        shared = [
            child
            for child in (
                second.predicate.children() or (second.predicate,)
            )
            if repr(child) in atoms_first
        ]
        assert shared, "expected an atom shared between the two segments"
        for child in shared:
            assert child is atoms_first[repr(child)]

    def test_constant_predicates_are_flagged(self):
        catalog = SegmentCatalog()
        everyone = catalog.register("everyone", TruePredicate())
        nobody = catalog.register("nobody", FalsePredicate())
        assert everyone.is_constant and nobody.is_constant
        assert everyone.n_atoms == 0

    def test_simplification_realizes_constants(self):
        # A contradictory conjunction simplifies to FALSE at registration.
        catalog = SegmentCatalog()
        contradiction = And(
            (Comparison("age", Op.LT, 10), Comparison("age", Op.GE, 20))
        )
        definition = catalog.register("impossible", contradiction)
        assert definition.is_constant
        assert isinstance(definition.predicate, FalsePredicate)


class TestLookup:
    def test_definitions_in_registration_order(self):
        catalog = SegmentCatalog()
        catalog.register("b", adult())
        catalog.register("a", rich())
        catalog.register("b", rich())  # re-register keeps slot
        assert [d.name for d in catalog.definitions()] == ["b", "a"]
        assert catalog.names() == ["b", "a"]

    def test_named_subset_preserves_given_order(self):
        catalog = SegmentCatalog()
        catalog.register("a", adult())
        catalog.register("b", rich())
        subset = catalog.definitions(["b", "a"])
        assert [d.name for d in subset] == ["b", "a"]

    def test_unknown_name_raises_segment_error(self):
        catalog = SegmentCatalog()
        with pytest.raises(SegmentError, match="no segment named"):
            catalog.definition("ghost")
        with pytest.raises(SegmentError):
            catalog.definitions(["ghost"])

    def test_retire_unknown_raises(self):
        catalog = SegmentCatalog()
        with pytest.raises(SegmentError):
            catalog.retire("ghost")


class TestModelBacked:
    @pytest.fixture(scope="class")
    def tree(self):
        rows = make_customer_rows(250, seed=5)
        return DecisionTreeLearner(
            CUSTOMER_FEATURES, "risk", max_depth=4, name="risk_tree"
        ).fit(rows)

    def test_register_model_one_segment_per_class(self, tree):
        catalog = SegmentCatalog()
        definitions = catalog.register_model(tree)
        assert {d.name for d in definitions} == {
            f"risk_tree/{label}" for label in tree.class_labels
        }
        for definition in definitions:
            assert definition.source == "model"
            assert definition.model_name == "risk_tree"
            assert definition.class_label in tree.class_labels

    def test_register_model_prefix_and_label_subset(self, tree):
        catalog = SegmentCatalog()
        label = sorted(tree.class_labels, key=str)[0]
        definitions = catalog.register_model(
            tree, labels=[label], prefix="risk"
        )
        assert [d.name for d in definitions] == [f"risk/{label}"]

    def test_register_model_unknown_label_raises(self, tree):
        catalog = SegmentCatalog()
        with pytest.raises(SegmentError, match="has no class"):
            catalog.register_model(tree, labels=["no-such-class"])

    def test_envelope_segments_admit_all_predicted_rows(self, tree):
        # Soundness carried over from envelope derivation: every row the
        # model predicts as class c satisfies the class-c segment.
        catalog = SegmentCatalog()
        catalog.register_model(tree)
        rows = make_customer_rows(120, seed=9)
        for row in rows:
            label = tree.predict(row)
            definition = catalog.definition(f"risk_tree/{label}")
            assert definition.predicate.evaluate(row)
