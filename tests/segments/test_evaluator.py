"""PredicateSetEvaluator: shared masks equal naive and scalar answers."""

import numpy as np
import pytest

from repro import obs
from repro.core.columns import ColumnBatch
from repro.core.predicates import (
    And,
    Comparison,
    FalsePredicate,
    InSet,
    Interval,
    Not,
    Op,
    Or,
    TruePredicate,
)
from repro.ir.batch import evaluate_batch
from repro.segments import PredicateSetEvaluator, SegmentCatalog

from tests.conftest import make_customer_rows


@pytest.fixture()
def catalog():
    age = Comparison("age", Op.GE, 40)
    income = Comparison("income", Op.GE, 60_000.0)
    north = Comparison("region", Op.EQ, "north")
    women = Comparison("gender", Op.EQ, "female")
    cat = SegmentCatalog()
    cat.register("older", age)
    cat.register("affluent", income)
    cat.register("older-affluent", And((age, income)))
    cat.register("target", Or((And((age, north)), And((income, women)))))
    cat.register("not-north", Not(north))
    cat.register("coastal", InSet("region", ("east", "west")))
    cat.register("mid-age", Interval("age", 30, 50, True, False))
    cat.register("everyone", TruePredicate())
    cat.register("nobody", FalsePredicate())
    return cat


@pytest.fixture()
def batch():
    return ColumnBatch(make_customer_rows(200, seed=13))


class TestCorrectness:
    def test_matches_naive_batch_and_scalar(self, catalog, batch):
        evaluator = PredicateSetEvaluator(catalog)
        result = evaluator.match(batch)
        rows = batch.rows()
        for definition, mask in zip(evaluator.definitions, result.masks):
            scalar = [definition.predicate.evaluate(row) for row in rows]
            assert list(mask) == scalar, definition.name
            if not definition.is_constant:
                naive = evaluate_batch(definition.predicate, batch)
                assert np.array_equal(mask, naive), definition.name

    def test_memberships_are_row_major_names(self, catalog, batch):
        evaluator = PredicateSetEvaluator(catalog)
        result = evaluator.match(batch)
        assert len(result.memberships) == len(batch)
        for row, members in zip(batch.rows(), result.memberships):
            expected = tuple(
                d.name
                for d in evaluator.definitions
                if d.predicate.evaluate(row)
            )
            assert members == expected

    def test_empty_batch(self, catalog):
        evaluator = PredicateSetEvaluator(catalog)
        result = evaluator.match(ColumnBatch([]))
        assert result.memberships == ()
        assert all(mask.shape == (0,) for mask in result.masks)

    def test_named_subset_and_order(self, catalog, batch):
        evaluator = PredicateSetEvaluator(
            catalog, ["target", "older"]
        )
        result = evaluator.match(batch)
        assert result.names == ("target", "older")
        full = PredicateSetEvaluator(catalog).match(batch)
        assert np.array_equal(result.mask("older"), full.mask("older"))

    def test_mask_accessor_unknown_name(self, catalog, batch):
        result = PredicateSetEvaluator(catalog).match(batch)
        with pytest.raises(KeyError):
            result.mask("ghost")


class TestSharing:
    def test_distinct_nodes_evaluated_once(self, catalog, batch):
        evaluator = PredicateSetEvaluator(catalog)
        result = evaluator.match(batch)
        structure = evaluator.sharing_stats()
        # Every distinct node is computed exactly once per batch...
        assert result.stats.computed == structure["nodes_distinct"]
        # ...and every additional occurrence is a cache hit.
        assert (
            result.stats.computed + result.stats.shared
            == structure["nodes_total"]
        )
        assert result.stats.shared > 0, "fixture must overlap subtrees"

    def test_constant_segments_never_touch_the_cache(self, catalog, batch):
        result = PredicateSetEvaluator(catalog).match(batch)
        assert result.stats.constants_skipped == 2
        assert np.all(result.mask("everyone"))
        assert not np.any(result.mask("nobody"))

    def test_share_ratio(self):
        cat = SegmentCatalog()
        atom = Comparison("age", Op.GE, 30)
        for index in range(4):
            cat.register(f"s{index}", atom)
        result = PredicateSetEvaluator(cat).match(
            ColumnBatch([{"age": 35}])
        )
        assert result.stats.computed == 1
        assert result.stats.shared == 3
        assert result.stats.share_ratio == pytest.approx(0.75)

    def test_counters_emitted(self, catalog, batch, tmp_path):
        obs.configure(str(tmp_path))
        try:
            PredicateSetEvaluator(catalog).match(batch)
            obs.flush()
        finally:
            obs.configure(None)
        summary = obs.summarize(str(tmp_path), strict=True)
        assert summary.counters["segments.mask.computed"] > 0
        assert summary.counters["segments.mask.shared"] > 0
        assert summary.counters["segments.constant.skipped"] == 2
        assert "segments.match" in summary.spans
        segments = summary.segments()
        assert 0.0 < segments["share_rate"] < 1.0


class TestSnapshots:
    def test_snapshot_survives_catalog_mutation(self, catalog, batch):
        evaluator = PredicateSetEvaluator(catalog)
        before = evaluator.match(batch)
        catalog.register("older", Comparison("age", Op.GE, 70))
        after = evaluator.match(batch)
        assert np.array_equal(
            before.mask("older"), after.mask("older")
        ), "evaluator must keep matching its construction-time snapshot"
        fresh = PredicateSetEvaluator(catalog).match(batch)
        assert not np.array_equal(
            before.mask("older"), fresh.mask("older")
        )

    def test_result_carries_catalog_version(self, catalog, batch):
        version = catalog.version
        result = PredicateSetEvaluator(catalog).match(batch)
        assert result.catalog_version == version
