"""QueryService.match_segments: admission, collapsing, coalescing."""

import threading

import pytest

from repro.core.predicates import And, Comparison, Op
from repro.exceptions import (
    QueueFullError,
    RequestTimeoutError,
    ServeError,
    ServiceStoppedError,
)
from repro.segments import MatchBatcher, SegmentCatalog
from repro.serve import ModelRegistry, QueryService
from repro.sql.database import Database, load_table

from tests.conftest import make_customer_rows


@pytest.fixture()
def catalog():
    age = Comparison("age", Op.GE, 40)
    income = Comparison("income", Op.GE, 60_000.0)
    cat = SegmentCatalog()
    cat.register("older", age)
    cat.register("affluent", income)
    cat.register("older-affluent", And((age, income)))
    return cat


@pytest.fixture()
def db():
    handle = Database(":memory:")
    load_table(handle, "customers", make_customer_rows(20, seed=2))
    yield handle
    handle.close()


def service_for(db, catalog, **kwargs):
    return QueryService(
        db,
        ModelRegistry(),
        segment_catalog=catalog,
        **kwargs,
    )


class TestEndpoint:
    def test_match_equals_direct_evaluation(self, db, catalog):
        rows = make_customer_rows(50, seed=21)
        with service_for(db, catalog, workers=2) as service:
            result = service.match_segments(rows)
        expected = tuple(
            tuple(
                d.name
                for d in catalog.definitions()
                if d.predicate.evaluate(row)
            )
            for row in rows
        )
        assert result.memberships == expected
        assert result.segment_names == ("older", "affluent", "older-affluent")
        assert result.catalog_version == catalog.version
        assert result.queue_seconds >= 0.0
        assert result.match_seconds >= 0.0

    def test_segment_subset(self, db, catalog):
        rows = make_customer_rows(10, seed=22)
        with service_for(db, catalog, workers=1) as service:
            result = service.match_segments(rows, segments=["affluent"])
        assert result.segment_names == ("affluent",)
        for row, members in zip(rows, result.memberships):
            assert members == (
                ("affluent",) if row["income"] >= 60_000.0 else ()
            )

    def test_without_catalog_raises_typed(self, db):
        with QueryService(db, ModelRegistry(), workers=1) as service:
            with pytest.raises(ServeError, match="segment catalog"):
                service.match_segments([{"age": 1}])

    def test_after_shutdown_raises_stopped(self, db, catalog):
        service = service_for(db, catalog, workers=1)
        service.shutdown()
        with pytest.raises(ServiceStoppedError):
            service.match_segments([{"age": 1}])

    def test_shares_admission_budget_with_queries(self, db, catalog):
        # max_pending bounds matches too: saturate with a held worker.
        gate = threading.Event()
        rows = [{"age": 50, "income": 70_000.0}]
        with service_for(
            db, catalog, workers=1, max_pending=1, collapsing=False
        ) as service:
            # Occupy the only worker+slot with a slow query-side request.
            blocker_rows = [dict(rows[0], age=i) for i in range(1)]

            class _SlowRows(list):
                def __iter__(self):
                    gate.wait(timeout=5)
                    return super().__iter__()

            first = service.submit_match(_SlowRows(blocker_rows))
            with pytest.raises(QueueFullError):
                for _ in range(3):
                    service.submit_match(rows)
            gate.set()
            first.result(timeout=5)

    def test_timeout_enforced(self, db, catalog):
        # A request that spends its whole deadline queued behind a slow
        # one fails with the typed timeout error.
        gate = threading.Event()

        class _SlowRows(list):
            def __iter__(self):
                gate.wait(timeout=5)
                return super().__iter__()

        with service_for(
            db, catalog, workers=1, collapsing=False
        ) as service:
            blocker = service.submit_match(
                _SlowRows([{"age": 1, "income": 1.0}])
            )
            try:
                with pytest.raises(RequestTimeoutError):
                    service.match_segments(
                        [{"age": 2, "income": 2.0}], timeout=0.05
                    )
            finally:
                gate.set()
            blocker.result(timeout=5)


class TestCollapsing:
    def test_identical_inflight_requests_collapse(self, db, catalog):
        rows = make_customer_rows(30, seed=23)
        with service_for(db, catalog, workers=2) as service:
            futures = [service.submit_match(rows) for _ in range(10)]
            results = [future.result(timeout=10) for future in futures]
        assert len({r.memberships for r in results}) == 1
        collapsed = sum(1 for r in results if r.collapsed)
        assert collapsed == service.stats.collapsed
        assert service.stats.completed + collapsed == 10

    def test_different_rows_do_not_collapse(self, db, catalog):
        with service_for(db, catalog, workers=1) as service:
            a = service.match_segments([{"age": 50, "income": 80_000.0}])
            b = service.match_segments([{"age": 20, "income": 1_000.0}])
        assert a.memberships != b.memberships
        assert not a.collapsed and not b.collapsed

    def test_collapse_key_is_content_exact(self, db, catalog):
        # Equal-content but distinct row objects share an in-flight
        # result; the key is the content, not object identity.
        rows_a = [{"age": 50, "income": 80_000.0}]
        rows_b = [{"income": 80_000.0, "age": 50}]  # same content
        with service_for(db, catalog, workers=2) as service:
            futures = [
                service.submit_match(rows_a if i % 2 else rows_b)
                for i in range(8)
            ]
            results = [f.result(timeout=10) for f in futures]
        assert len({r.memberships for r in results}) == 1


class TestMatchBatcher:
    def test_concurrent_requests_coalesce(self, catalog):
        batcher = MatchBatcher(catalog)
        try:
            start = threading.Barrier(6)
            results = [None] * 6

            def worker(index):
                rows = [{"age": 40 + index, "income": 1000.0 * index}]
                start.wait(timeout=5)
                results[index] = batcher.match(rows)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
        finally:
            batcher.stop()
        assert batcher.requests == 6
        for index, (matches, _) in enumerate(results):
            row = {"age": 40 + index, "income": 1000.0 * index}
            expected = tuple(
                tuple(
                    d.name
                    for d in catalog.definitions()
                    if d.predicate.evaluate(r)
                )
                for r in [row]
            )
            assert matches.memberships == expected

    def test_stop_fails_pending_and_future(self, catalog):
        batcher = MatchBatcher(catalog)
        batcher.stop()
        with pytest.raises(ServiceStoppedError):
            batcher.match([{"age": 1}])

    def test_catalog_mutation_between_calls_is_picked_up(self, catalog):
        batcher = MatchBatcher(catalog)
        try:
            row = [{"age": 45, "income": 10.0}]
            before, _ = batcher.match(row)
            catalog.register("older", Comparison("age", Op.GE, 60))
            after, _ = batcher.match(row)
        finally:
            batcher.stop()
        assert "older" in before.memberships[0]
        assert "older" not in after.memberships[0]
        assert after.catalog_version > before.catalog_version
