"""Serving-layer fixtures: a loaded database and a deployed registry."""

from __future__ import annotations

import pytest

from repro.core.optimizer import MiningQuery
from repro.core.rewrite import PredictionEquals
from repro.serve import ModelRegistry
from repro.sql.database import Database, load_table

from tests.conftest import CUSTOMER_FEATURES


@pytest.fixture()
def serve_db(customer_rows):
    """A fresh customers table (features only) with two indexes."""
    db = Database()
    load_table(
        db,
        "customers",
        [{c: row[c] for c in CUSTOMER_FEATURES} for row in customer_rows],
    )
    db.create_index("customers", ["age"])
    db.create_index("customers", ["income"])
    yield db
    db.close()


@pytest.fixture(scope="module")
def deployed_registry(customer_tree, customer_nb):
    """Both customer models registered and deployed (envelopes derived).

    Module-scoped to amortize envelope derivation; serving tests only
    read it.  Lifecycle tests (register/retire) build their own.
    """
    registry = ModelRegistry(max_nodes=150)
    registry.register(customer_tree, deploy=True)
    registry.register(customer_nb, deploy=True)
    return registry


@pytest.fixture(scope="module")
def label_queries(deployed_registry):
    """One prediction-join query per deployed (model, label) pair."""
    queries = []
    for name in deployed_registry.deployed_names():
        version = deployed_registry.deployed_version(name)
        for label in sorted(version.envelopes, key=str):
            queries.append(
                MiningQuery(
                    "customers",
                    mining_predicates=(PredictionEquals(name, label),),
                )
            )
    return queries
