"""Admission control: deadlines, bounded queueing, typed shedding."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import QueueFullError
from repro.serve import AdmissionController, Deadline


class TestDeadline:
    def test_from_timeout_none(self):
        assert Deadline.from_timeout(None) is None

    def test_remaining_counts_down(self):
        deadline = Deadline(10.0)
        first = deadline.remaining()
        assert 0 < first <= 10.0
        assert deadline.remaining() <= first
        assert not deadline.expired

    def test_expiry(self):
        deadline = Deadline(0.01)
        time.sleep(0.02)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    @pytest.mark.parametrize("bad", [0, -1.5])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="timeout"):
            Deadline(bad)


class TestAdmissionController:
    def test_sheds_beyond_capacity(self):
        controller = AdmissionController(max_pending=2)
        controller.admit()
        controller.admit()
        assert controller.pending == 2
        with pytest.raises(QueueFullError, match="2/2 pending"):
            controller.admit()
        controller.release()
        controller.admit()  # a freed slot admits again
        assert controller.pending == 2

    def test_release_without_admit(self):
        controller = AdmissionController(max_pending=1)
        with pytest.raises(AssertionError):
            controller.release()

    def test_default_timeout_resolution(self):
        controller = AdmissionController(
            max_pending=1, default_timeout=5.0
        )
        assert controller.deadline_for(None).timeout == 5.0
        assert controller.deadline_for(1.0).timeout == 1.0
        unlimited = AdmissionController(max_pending=1)
        assert unlimited.deadline_for(None) is None

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_bad_capacity(self, bad):
        with pytest.raises(ValueError, match="max_pending"):
            AdmissionController(max_pending=bad)

    def test_rejects_bad_default_timeout(self):
        with pytest.raises(ValueError, match="default_timeout"):
            AdmissionController(max_pending=1, default_timeout=0)


class TestQueueDepthGauge:
    """The ``serve.queue.depth`` gauge is published under the lock, so
    its sequence must mirror the depth transitions exactly — the old
    publish-after-release could interleave and strand a stale value."""

    def _record_gauges(self, monkeypatch):
        from repro import obs
        from repro.serve import admission

        published: list[tuple[str, float]] = []

        def capture(name: str, value: float) -> None:
            published.append((name, value))

        # Patch both the obs package attribute and the module alias the
        # controller resolves at call time.
        monkeypatch.setattr(obs, "set_gauge", capture)
        monkeypatch.setattr(admission.obs, "set_gauge", capture)
        return published

    def test_gauge_tracks_every_transition(self, monkeypatch):
        published = self._record_gauges(monkeypatch)
        controller = AdmissionController(max_pending=4)
        controller.admit()
        controller.admit()
        controller.release()
        controller.admit()
        controller.release()
        controller.release()
        values = [
            value
            for name, value in published
            if name == "serve.queue.depth"
        ]
        assert values == [1, 2, 1, 2, 1, 0]

    def test_gauge_is_monotone_consistent_under_threads(self, monkeypatch):
        """Concurrent admit/release must publish a sequence of depths
        that only ever steps by +-1, stays within bounds, and ends at
        zero — impossible if publishes raced outside the lock."""
        import threading

        published = self._record_gauges(monkeypatch)
        controller = AdmissionController(max_pending=64)

        def worker() -> None:
            for _ in range(100):
                controller.admit()
                controller.release()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        values = [
            value
            for name, value in published
            if name == "serve.queue.depth"
        ]
        assert len(values) == 8 * 100 * 2
        assert values[-1] == 0
        assert all(0 <= value <= 64 for value in values)
        for before, after in zip(values, values[1:]):
            assert abs(after - before) == 1


class TestServiceTimeEstimator:
    def test_first_observation_seeds_exactly(self):
        from repro.serve import ServiceTimeEstimator

        estimator = ServiceTimeEstimator(alpha=0.3)
        assert estimator.estimate("query") is None
        estimator.observe("query", 0.1)
        assert estimator.estimate("query") == 0.1

    def test_ewma_smoothing(self):
        from repro.serve import ServiceTimeEstimator

        estimator = ServiceTimeEstimator(alpha=0.5)
        estimator.observe("query", 0.1)
        estimator.observe("query", 0.3)
        assert estimator.estimate("query") == pytest.approx(0.2)
        assert estimator.observations("query") == 2

    def test_kinds_are_independent(self):
        from repro.serve import ServiceTimeEstimator

        estimator = ServiceTimeEstimator()
        estimator.observe("query", 0.5)
        assert estimator.estimate("match") is None
        estimator.observe("match", 0.01)
        assert estimator.snapshot() == {"query": 0.5, "match": 0.01}

    def test_validation(self):
        from repro.serve import ServiceTimeEstimator

        with pytest.raises(ValueError, match="alpha"):
            ServiceTimeEstimator(alpha=0.0)
        with pytest.raises(ValueError, match="seconds"):
            ServiceTimeEstimator().observe("query", -1.0)


class TestAdaptiveAdmissionController:
    def _controller(self, **kwargs):
        from repro.serve import AdaptiveAdmissionController

        defaults = dict(max_pending=16, workers=2)
        defaults.update(kwargs)
        return AdaptiveAdmissionController(**defaults)

    def test_starts_at_the_static_ceiling(self):
        controller = self._controller()
        assert controller.limit == 16.0

    def test_misses_halve_the_limit_down_to_the_worker_floor(self):
        controller = self._controller()
        controller.record_outcome("query", 0.1, ok=False)
        assert controller.limit == 8.0
        for _ in range(10):
            controller.record_outcome("query", 0.1, ok=False)
        assert controller.limit == 2.0  # floored at workers

    def test_successes_recover_additively(self):
        controller = self._controller()
        for _ in range(4):
            controller.record_outcome("query", 0.1, ok=False)
        shrunk = controller.limit
        controller.record_outcome("query", 0.1, ok=True)
        assert controller.limit == pytest.approx(shrunk + 1.0 / shrunk)
        for _ in range(2000):
            controller.record_outcome("query", 0.1, ok=True)
        assert controller.limit == 16.0  # capped at max_pending

    def test_shrunk_limit_sheds_before_the_static_bound(self):
        controller = self._controller(max_pending=4, workers=1)
        for _ in range(10):
            controller.record_outcome("query", 0.1, ok=False)
        assert controller.limit == 1.0
        controller.admit()
        with pytest.raises(QueueFullError, match="adaptive"):
            controller.admit()
        controller.release()

    def test_deadline_shed_predicts_from_the_estimate(self):
        from repro.exceptions import AdmissionError, DeadlineShedError
        from repro.serve import Deadline

        controller = self._controller(max_pending=16, workers=1)
        # Seed the estimator: queries take ~100ms.
        controller.record_outcome("query", 0.1, ok=True)
        controller.admit(kind="query", deadline=Deadline(10.0))
        # One pending + this one through 1 worker ~ 0.2s > 50ms budget.
        with pytest.raises(DeadlineShedError) as excinfo:
            controller.admit(kind="query", deadline=Deadline(0.05))
        assert isinstance(excinfo.value, AdmissionError)
        # A roomy deadline still admits.
        controller.admit(kind="query", deadline=Deadline(10.0))
        assert controller.pending == 2
        controller.release()
        controller.release()

    def test_no_estimate_means_no_deadline_shed(self):
        from repro.serve import Deadline

        controller = self._controller()
        controller.admit(kind="query", deadline=Deadline(0.0001))
        assert controller.pending == 1
        controller.release()

    def test_record_outcome_feeds_the_estimator(self):
        controller = self._controller()
        assert controller.estimator.estimate("query") is None
        controller.record_outcome("query", 0.25, ok=True)
        assert controller.estimator.estimate("query") == 0.25
        # A queued timeout has no service time but still penalizes.
        controller.record_outcome("query", None, ok=False)
        assert controller.estimator.observations("query") == 1

    def test_base_controller_ignores_kind_and_deadline(self):
        from repro.serve import Deadline

        controller = AdmissionController(max_pending=2)
        controller.admit(kind="query", deadline=Deadline(0.001))
        controller.record_outcome("query", 0.1, ok=False)  # no-op
        assert controller.pending == 1
        controller.release()
