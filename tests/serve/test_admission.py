"""Admission control: deadlines, bounded queueing, typed shedding."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import QueueFullError
from repro.serve import AdmissionController, Deadline


class TestDeadline:
    def test_from_timeout_none(self):
        assert Deadline.from_timeout(None) is None

    def test_remaining_counts_down(self):
        deadline = Deadline(10.0)
        first = deadline.remaining()
        assert 0 < first <= 10.0
        assert deadline.remaining() <= first
        assert not deadline.expired

    def test_expiry(self):
        deadline = Deadline(0.01)
        time.sleep(0.02)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    @pytest.mark.parametrize("bad", [0, -1.5])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="timeout"):
            Deadline(bad)


class TestAdmissionController:
    def test_sheds_beyond_capacity(self):
        controller = AdmissionController(max_pending=2)
        controller.admit()
        controller.admit()
        assert controller.pending == 2
        with pytest.raises(QueueFullError, match="2/2 pending"):
            controller.admit()
        controller.release()
        controller.admit()  # a freed slot admits again
        assert controller.pending == 2

    def test_release_without_admit(self):
        controller = AdmissionController(max_pending=1)
        with pytest.raises(AssertionError):
            controller.release()

    def test_default_timeout_resolution(self):
        controller = AdmissionController(
            max_pending=1, default_timeout=5.0
        )
        assert controller.deadline_for(None).timeout == 5.0
        assert controller.deadline_for(1.0).timeout == 1.0
        unlimited = AdmissionController(max_pending=1)
        assert unlimited.deadline_for(None) is None

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_bad_capacity(self, bad):
        with pytest.raises(ValueError, match="max_pending"):
            AdmissionController(max_pending=bad)

    def test_rejects_bad_default_timeout(self):
        with pytest.raises(ValueError, match="default_timeout"):
            AdmissionController(max_pending=1, default_timeout=0)


class TestQueueDepthGauge:
    """The ``serve.queue.depth`` gauge is published under the lock, so
    its sequence must mirror the depth transitions exactly — the old
    publish-after-release could interleave and strand a stale value."""

    def _record_gauges(self, monkeypatch):
        from repro import obs
        from repro.serve import admission

        published: list[tuple[str, float]] = []

        def capture(name: str, value: float) -> None:
            published.append((name, value))

        # Patch both the obs package attribute and the module alias the
        # controller resolves at call time.
        monkeypatch.setattr(obs, "set_gauge", capture)
        monkeypatch.setattr(admission.obs, "set_gauge", capture)
        return published

    def test_gauge_tracks_every_transition(self, monkeypatch):
        published = self._record_gauges(monkeypatch)
        controller = AdmissionController(max_pending=4)
        controller.admit()
        controller.admit()
        controller.release()
        controller.admit()
        controller.release()
        controller.release()
        values = [
            value
            for name, value in published
            if name == "serve.queue.depth"
        ]
        assert values == [1, 2, 1, 2, 1, 0]

    def test_gauge_is_monotone_consistent_under_threads(self, monkeypatch):
        """Concurrent admit/release must publish a sequence of depths
        that only ever steps by +-1, stays within bounds, and ends at
        zero — impossible if publishes raced outside the lock."""
        import threading

        published = self._record_gauges(monkeypatch)
        controller = AdmissionController(max_pending=64)

        def worker() -> None:
            for _ in range(100):
                controller.admit()
                controller.release()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        values = [
            value
            for name, value in published
            if name == "serve.queue.depth"
        ]
        assert len(values) == 8 * 100 * 2
        assert values[-1] == 0
        assert all(0 <= value <= 64 for value in values)
        for before, after in zip(values, values[1:]):
            assert abs(after - before) == 1
