"""Admission control: deadlines, bounded queueing, typed shedding."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import QueueFullError
from repro.serve import AdmissionController, Deadline


class TestDeadline:
    def test_from_timeout_none(self):
        assert Deadline.from_timeout(None) is None

    def test_remaining_counts_down(self):
        deadline = Deadline(10.0)
        first = deadline.remaining()
        assert 0 < first <= 10.0
        assert deadline.remaining() <= first
        assert not deadline.expired

    def test_expiry(self):
        deadline = Deadline(0.01)
        time.sleep(0.02)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    @pytest.mark.parametrize("bad", [0, -1.5])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="timeout"):
            Deadline(bad)


class TestAdmissionController:
    def test_sheds_beyond_capacity(self):
        controller = AdmissionController(max_pending=2)
        controller.admit()
        controller.admit()
        assert controller.pending == 2
        with pytest.raises(QueueFullError, match="2/2 pending"):
            controller.admit()
        controller.release()
        controller.admit()  # a freed slot admits again
        assert controller.pending == 2

    def test_release_without_admit(self):
        controller = AdmissionController(max_pending=1)
        with pytest.raises(AssertionError):
            controller.release()

    def test_default_timeout_resolution(self):
        controller = AdmissionController(
            max_pending=1, default_timeout=5.0
        )
        assert controller.deadline_for(None).timeout == 5.0
        assert controller.deadline_for(1.0).timeout == 1.0
        unlimited = AdmissionController(max_pending=1)
        assert unlimited.deadline_for(None) is None

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_bad_capacity(self, bad):
        with pytest.raises(ValueError, match="max_pending"):
            AdmissionController(max_pending=bad)

    def test_rejects_bad_default_timeout(self):
        with pytest.raises(ValueError, match="default_timeout"):
            AdmissionController(max_pending=1, default_timeout=0)
