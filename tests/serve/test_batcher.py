"""Micro-batcher: coalescing, bit-identity, failure propagation."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.columns import ColumnBatch
from repro.exceptions import ServiceStoppedError
from repro.serve import BatchingCatalog, MicroBatcher
from repro.serve.batcher import _BatchingModel


class EchoModel:
    """Deterministic stand-in model: predicts ``x`` doubled."""

    name = "echo"

    def __init__(self, delay: float = 0.0) -> None:
        self.delay = delay
        self.calls = 0
        self.batch_sizes: list[int] = []

    def predict_batch(self, batch: ColumnBatch) -> np.ndarray:
        self.calls += 1
        rows = batch.rows()
        self.batch_sizes.append(len(rows))
        if self.delay:
            time.sleep(self.delay)
        return np.array([row["x"] * 2 for row in rows])

    def supports_batch(self) -> bool:
        return True


class FailingModel:
    name = "failing"

    def predict_batch(self, batch: ColumnBatch) -> np.ndarray:
        raise ValueError("model exploded")


class StubCatalog:
    """The minimal catalog surface the batcher touches."""

    def __init__(self, *models) -> None:
        self._models = {model.name: model for model in models}

    def model(self, name: str):
        return self._models[name]


def batch_of(values) -> ColumnBatch:
    return ColumnBatch([{"x": v} for v in values])


class TestMicroBatcher:
    def test_single_request_passthrough(self):
        model = EchoModel()
        with MicroBatcher(StubCatalog(model)) as batcher:
            result = batcher.score("echo", batch_of([1, 2, 3]))
        assert np.array_equal(result, [2, 4, 6])
        assert batcher.calls == 1
        assert batcher.coalesced == 0

    def test_concurrent_requests_coalesce_bit_identically(self):
        # The first (slow) call occupies the scorer; the rest pile up and
        # must be drained through one shared predict_batch call.
        model = EchoModel(delay=0.1)
        with MicroBatcher(StubCatalog(model)) as batcher:
            results: dict[int, np.ndarray] = {}

            def request(index: int) -> None:
                values = list(range(index * 10, index * 10 + 3))
                results[index] = batcher.score("echo", batch_of(values))

            threads = [
                threading.Thread(target=request, args=(i,))
                for i in range(4)
            ]
            threads[0].start()
            time.sleep(0.03)  # let request 0 reach the scorer
            for thread in threads[1:]:
                thread.start()
            for thread in threads:
                thread.join()
        for index in range(4):
            expected = [v * 2 for v in range(index * 10, index * 10 + 3)]
            assert np.array_equal(results[index], expected), index
        assert batcher.requests == 4
        assert batcher.calls < 4  # at least two requests shared a call
        assert batcher.coalesced >= 2
        assert max(model.batch_sizes) >= 6  # a genuinely merged batch

    def test_model_error_reaches_every_waiter(self):
        with MicroBatcher(StubCatalog(FailingModel())) as batcher:
            with pytest.raises(ValueError, match="model exploded"):
                batcher.score("failing", batch_of([1]))

    def test_unknown_model_raises(self):
        with MicroBatcher(StubCatalog()) as batcher:
            with pytest.raises(KeyError):
                batcher.score("ghost", batch_of([1]))

    def test_stopped_batcher_refuses(self):
        batcher = MicroBatcher(StubCatalog(EchoModel()))
        batcher.stop()
        batcher.stop()  # idempotent
        with pytest.raises(ServiceStoppedError):
            batcher.score("echo", batch_of([1]))


class TestBatchingCatalog:
    def test_model_is_proxied(self):
        model = EchoModel()
        with MicroBatcher(StubCatalog(model)) as batcher:
            catalog = BatchingCatalog(StubCatalog(model), batcher)
            proxy = catalog.model("echo")
            assert isinstance(proxy, _BatchingModel)
            assert proxy.supports_batch()
            assert proxy.name == "echo"  # attribute delegation
            result = proxy.predict_batch(batch_of([5]))
        assert np.array_equal(result, [10])

    def test_other_lookups_delegate(self):
        stub = StubCatalog(EchoModel())
        with MicroBatcher(stub) as batcher:
            catalog = BatchingCatalog(stub, batcher)
            assert catalog._models is stub._models


class TestConcatenateSliceContract:
    def test_real_model_concat_slice_identity(self, customer_nb):
        """predict_batch over concatenated rows == per-part results."""
        rows_a = [
            {"age": 25, "income": 20_000.0, "gender": "female",
             "region": "north"},
            {"age": 60, "income": 90_000.0, "gender": "male",
             "region": "south"},
        ]
        rows_b = [
            {"age": 40, "income": 55_000.0, "gender": "male",
             "region": "east"},
        ]
        merged = customer_nb.predict_batch(ColumnBatch(rows_a + rows_b))
        part_a = customer_nb.predict_batch(ColumnBatch(rows_a))
        part_b = customer_nb.predict_batch(ColumnBatch(rows_b))
        assert np.array_equal(merged[: len(rows_a)], part_a)
        assert np.array_equal(merged[len(rows_a) :], part_b)


class TestAccumulationWindow:
    def test_window_coalesces_staggered_arrivals(self):
        # Without a window the first request drains alone (the scorer
        # never sleeps waiting for company).  With one, a request that
        # arrives a couple of milliseconds later shares the call.
        model = EchoModel()
        with MicroBatcher(StubCatalog(model), window=0.05) as batcher:
            results: dict[int, np.ndarray] = {}

            def request(index: int) -> None:
                values = [index * 10, index * 10 + 1]
                results[index] = batcher.score("echo", batch_of(values))

            threads = [
                threading.Thread(target=request, args=(i,))
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
                time.sleep(0.005)  # well inside the window
            for thread in threads:
                thread.join()
        assert batcher.calls == 1
        assert batcher.requests == 3
        assert batcher.coalesced == 3
        assert model.batch_sizes == [6]
        for index in range(3):
            expected = [v * 2 for v in (index * 10, index * 10 + 1)]
            assert np.array_equal(results[index], expected), index

    def test_window_bounds_the_added_latency(self):
        model = EchoModel()
        with MicroBatcher(StubCatalog(model), window=0.02) as batcher:
            started = time.monotonic()
            batcher.score("echo", batch_of([1]))
            elapsed = time.monotonic() - started
        # One window of accumulation plus scheduling slack, not more.
        assert elapsed < 0.5
        assert elapsed >= 0.02

    def test_negative_window_is_rejected(self):
        with pytest.raises(ValueError, match="window"):
            MicroBatcher(StubCatalog(EchoModel()), window=-0.001)

    def test_stop_interrupts_an_open_window(self):
        # A stop() issued mid-window must not wait the window out with
        # requests pending: the waiter fails typed, promptly.
        model = EchoModel()
        batcher = MicroBatcher(StubCatalog(model), window=5.0)
        errors: list[BaseException] = []

        def request() -> None:
            try:
                batcher.score("echo", batch_of([1]))
            except BaseException as error:
                errors.append(error)

        thread = threading.Thread(target=request)
        thread.start()
        time.sleep(0.05)  # let the request open the window
        started = time.monotonic()
        batcher.stop()
        thread.join(timeout=10)
        assert time.monotonic() - started < 2.0
        assert len(errors) == 1
        assert isinstance(errors[0], ServiceStoppedError)
        assert model.calls == 0
