"""ServeEngine: typed requests, control plane, and constructor safety.

The leak regression: a constructor step that raises after the
connection pool (and possibly batcher threads) exist must tear all of
it down before propagating — a failed ``__init__`` may not strand
daemon threads or open connections.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.optimizer import MiningQuery
from repro.core.predicates import Comparison, Op
from repro.core.rewrite import PredictionEquals
from repro.exceptions import (
    RegistryError,
    ServeError,
    ServiceStoppedError,
)
from repro.segments.catalog import SegmentCatalog
from repro.serve.engine import (
    DeployRequest,
    MatchRequest,
    QueryRequest,
    RetireRequest,
    ServeEngine,
)
from repro.serve.pool import ConnectionPool
from repro.serve.registry import ModelRegistry
from repro.sql.miningext import PredictionJoinExecutor


def repro_threads() -> set[str]:
    """Names of live library-owned threads (workers, batchers, pools)."""
    return {
        t.name
        for t in threading.enumerate()
        if t.is_alive() and t.name.startswith("repro-")
    }


class _BrokenRegistry:
    """A registry whose catalog access fails mid-constructor.

    ``ServeEngine.__init__`` touches ``registry.catalog`` *after*
    creating the connection pool, the admission controller, and the
    segment match batcher — the deepest point a constructor failure can
    strand resources.
    """

    @property
    def catalog(self):
        raise RuntimeError("catalog unavailable")


@pytest.fixture()
def pool_spy(monkeypatch):
    calls: list[str] = []
    original = ConnectionPool.close_all

    def spying_close_all(self):
        calls.append("close_all")
        return original(self)

    monkeypatch.setattr(ConnectionPool, "close_all", spying_close_all)
    return calls


class TestConstructorLeaks:
    def test_invalid_max_pending_releases_pool(self, serve_db, pool_spy):
        before = repro_threads()
        with pytest.raises(ValueError, match="max_pending"):
            ServeEngine(serve_db, ModelRegistry(), max_pending=0)
        assert repro_threads() == before
        assert pool_spy == ["close_all"]

    def test_late_failure_tears_down_batcher_threads(
        self, serve_db, pool_spy
    ):
        """Failure after the match batcher exists stops its thread too."""
        catalog = SegmentCatalog()
        catalog.register("adult", Comparison("age", Op.GE, 18))
        before = repro_threads()
        with pytest.raises(RuntimeError, match="catalog unavailable"):
            ServeEngine(
                serve_db, _BrokenRegistry(), segment_catalog=catalog
            )
        assert repro_threads() == before
        assert pool_spy == ["close_all"]

    def test_invalid_workers_rejected_before_any_resource(self, serve_db):
        before = repro_threads()
        with pytest.raises(ValueError, match="workers"):
            ServeEngine(serve_db, ModelRegistry(), workers=0)
        assert repro_threads() == before


class TestTypedRequests:
    def test_query_request_matches_direct_execution(
        self, serve_db, deployed_registry, label_queries
    ):
        expected = PredictionJoinExecutor(
            serve_db, deployed_registry.catalog
        ).execute(label_queries[0])
        with ServeEngine(
            serve_db, deployed_registry, workers=2
        ) as engine:
            result = engine.execute(QueryRequest(query=label_queries[0]))
        assert result.rows == expected.rows
        assert result.report is not None
        assert result.collapsed is False

    def test_match_without_catalog_is_typed(
        self, serve_db, deployed_registry
    ):
        with ServeEngine(serve_db, deployed_registry) as engine:
            with pytest.raises(ServeError, match="segment catalog"):
                engine.submit(MatchRequest(rows=({"age": 30},)))

    def test_submit_after_shutdown_raises(self, serve_db, deployed_registry):
        engine = ServeEngine(serve_db, deployed_registry, workers=1)
        engine.shutdown()
        with pytest.raises(ServiceStoppedError):
            engine.submit(QueryRequest(query=MiningQuery("customers")))


class TestControlPlane:
    def test_deploy_and_retire_are_version_stamped(
        self, serve_db, customer_tree
    ):
        registry = ModelRegistry(max_nodes=150)
        with ServeEngine(serve_db, registry, workers=1) as engine:
            deployed = engine.control(
                DeployRequest(model=customer_tree.to_dict())
            )
            assert deployed.name == "risk_tree"
            assert deployed.version == 1
            assert deployed.catalog_version >= 1
            assert deployed.labels == ("high", "low", "medium")

            result = engine.execute(
                QueryRequest(
                    query=MiningQuery(
                        "customers",
                        mining_predicates=(
                            PredictionEquals("risk_tree", "high"),
                        ),
                    )
                )
            )
            assert result.rows_returned > 0

            retired = engine.control(RetireRequest(name="risk_tree"))
            assert retired.name == "risk_tree"
            assert retired.version == 1
            with pytest.raises(RegistryError):
                engine.control(RetireRequest(name="risk_tree"))

    def test_redeploy_bumps_versions(self, serve_db, customer_tree):
        registry = ModelRegistry(max_nodes=150)
        with ServeEngine(serve_db, registry, workers=1) as engine:
            first = engine.control(
                DeployRequest(model=customer_tree.to_dict())
            )
            second = engine.control(
                DeployRequest(model=customer_tree.to_dict())
            )
            assert second.version == first.version + 1
            assert second.catalog_version > first.catalog_version

    def test_unsupported_control_request_raises(
        self, serve_db, deployed_registry
    ):
        with ServeEngine(serve_db, deployed_registry, workers=1) as engine:
            with pytest.raises(ServeError, match="unsupported control"):
                engine.control("deploy")  # type: ignore[arg-type]
