"""Connection pool and Database thread-affinity fixes."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import DatabaseError, ServiceStoppedError
from repro.serve import ConnectionPool
from repro.sql.database import Database, load_table

ROWS = [{"x": i, "label": "a" if i % 2 else "b"} for i in range(50)]


@pytest.fixture()
def db():
    handle = Database()
    load_table(handle, "t", ROWS)
    yield handle
    handle.close()


class TestConnectionPool:
    def test_sibling_sees_data(self, db):
        with ConnectionPool(db) as pool:
            sibling = pool.get()
            assert sibling is not db
            rows = sibling.query_rows("SELECT COUNT(*) AS n FROM t")
            assert rows[0]["n"] == len(ROWS)

    def test_same_thread_reuses_handle(self, db):
        with ConnectionPool(db) as pool:
            assert pool.get() is pool.get()
            assert len(pool) == 1

    def test_each_thread_gets_its_own(self, db):
        with ConnectionPool(db) as pool:
            mine = pool.get()
            seen: list = []

            def worker() -> None:
                handle = pool.get()
                seen.append(handle)
                seen.append(
                    handle.query_rows("SELECT COUNT(*) AS n FROM t")[0]["n"]
                )

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert seen[0] is not mine
            assert seen[1] == len(ROWS)
            assert len(pool) == 2

    def test_read_only_blocks_writes(self, db):
        with ConnectionPool(db, read_only=True) as pool:
            sibling = pool.get()
            with pytest.raises(DatabaseError):
                sibling.execute("INSERT INTO t (x, label) VALUES (99, 'c')")
            with pytest.raises(DatabaseError):
                sibling.execute("CREATE TABLE other (y INTEGER)")

    def test_writable_sibling_visible_to_primary(self, db):
        with ConnectionPool(db, read_only=False) as pool:
            sibling = pool.get()
            sibling.execute("INSERT INTO t (x, label) VALUES (99, 'c')")
            sibling.execute("COMMIT")
            rows = db.query_rows("SELECT COUNT(*) AS n FROM t")
            assert rows[0]["n"] == len(ROWS) + 1

    def test_closed_pool_refuses(self, db):
        pool = ConnectionPool(db)
        pool.get()
        pool.close_all()
        with pytest.raises(ServiceStoppedError):
            pool.get()
        pool.close_all()  # idempotent
        # The primary handle is not owned by the pool.
        assert db.query_rows("SELECT COUNT(*) AS n FROM t")[0]["n"] == len(
            ROWS
        )


class TestDatabaseThreadAffinity:
    def test_primary_is_thread_bound(self, db):
        errors: list = []

        def worker() -> None:
            try:
                db.query_rows("SELECT COUNT(*) AS n FROM t")
            except DatabaseError as exc:
                errors.append(exc)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert len(errors) == 1  # sqlite3 thread check, wrapped typed

    def test_for_thread_usable_from_other_thread(self, db):
        sibling = db.for_thread()
        counts: list[int] = []

        def worker() -> None:
            counts.append(
                sibling.query_rows("SELECT COUNT(*) AS n FROM t")[0]["n"]
            )

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        sibling.close()
        assert counts == [len(ROWS)]

    def test_memory_databases_are_isolated(self):
        a, b = Database(), Database()
        load_table(a, "only_in_a", [{"x": 1}])
        with pytest.raises(DatabaseError):
            b.query_rows("SELECT * FROM only_in_a")
        a.close()
        b.close()

    def test_file_backed_sibling(self, tmp_path):
        path = str(tmp_path / "served.db")
        primary = Database(path)
        load_table(primary, "t", ROWS)
        sibling = primary.for_thread()
        n = sibling.query_rows("SELECT COUNT(*) AS n FROM t")[0]["n"]
        assert n == len(ROWS)
        sibling.close()
        primary.close()

    def test_sibling_shares_schema_registry(self, db):
        sibling = db.for_thread()
        assert sibling.schema("t") is db.schema("t")
        sibling.close()
