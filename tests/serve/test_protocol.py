"""Unit tests for the framed wire codec (``repro.serve.protocol``).

Round-trips every frame kind, every typed request/response, value
fidelity (including the tagged non-finite floats), and the full typed
error registry; malformed input must surface as
:class:`~repro.exceptions.ProtocolError`, never json/struct-flavored.
"""

from __future__ import annotations

import math

import pytest

import repro.exceptions as exceptions
from repro.core.optimizer import MiningQuery
from repro.core.predicates import (
    FALSE,
    TRUE,
    And,
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    Or,
)
from repro.core.rewrite import (
    PredictionEquals,
    PredictionIn,
    PredictionJoinColumn,
    PredictionJoinPrediction,
)
from repro.exceptions import (
    ProtocolError,
    QueueFullError,
    ReproError,
    RequestTimeoutError,
    ServeError,
)
from repro.ir.batch import MaskCacheStats
from repro.serve.engine import (
    DeployRequest,
    DeployResult,
    MatchRequest,
    QueryRequest,
    RetireRequest,
    RetireResult,
    SegmentMatchResult,
    ServeResult,
)
from repro.serve.protocol import (
    HEADER_BYTES,
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    MAX_FRAME_BYTES,
    FrameDecoder,
    decode_error,
    decode_predicate,
    decode_request,
    decode_response,
    decode_value,
    encode_error,
    encode_frame,
    encode_predicate,
    encode_request,
    encode_response,
    encode_value,
)


class TestFrames:
    def test_round_trip_single_frame(self):
        data = encode_frame(KIND_REQUEST, 7, {"q": "retire", "name": "m"})
        frames = FrameDecoder().feed(data)
        assert len(frames) == 1
        assert frames[0].kind == KIND_REQUEST
        assert frames[0].request_id == 7
        assert frames[0].payload == {"q": "retire", "name": "m"}

    def test_byte_by_byte_fragmentation(self):
        data = encode_frame(KIND_RESPONSE, 3, {"r": "retire", "name": "m",
                                               "version": 1})
        decoder = FrameDecoder()
        frames = []
        for i in range(len(data)):
            frames.extend(decoder.feed(data[i : i + 1]))
        assert len(frames) == 1
        assert frames[0].request_id == 3

    def test_concatenated_frames_one_feed(self):
        stream = b"".join(
            encode_frame(KIND_REQUEST, i, {"q": "retire", "name": str(i)})
            for i in range(5)
        )
        frames = FrameDecoder().feed(stream)
        assert [f.request_id for f in frames] == [0, 1, 2, 3, 4]

    def test_split_mid_header(self):
        data = encode_frame(KIND_ERROR, 9, {"error": "ServeError",
                                            "message": "x"})
        decoder = FrameDecoder()
        assert decoder.feed(data[: HEADER_BYTES // 2]) == []
        frames = decoder.feed(data[HEADER_BYTES // 2 :])
        assert len(frames) == 1
        assert frames[0].kind == KIND_ERROR

    def test_bad_magic_raises(self):
        data = bytearray(encode_frame(KIND_REQUEST, 1, {"q": "retire",
                                                        "name": "m"}))
        data[0:2] = b"XX"
        with pytest.raises(ProtocolError, match="magic"):
            FrameDecoder().feed(bytes(data))

    def test_bad_version_raises(self):
        data = bytearray(encode_frame(KIND_REQUEST, 1, {"q": "retire",
                                                        "name": "m"}))
        data[2] = 99
        with pytest.raises(ProtocolError, match="version"):
            FrameDecoder().feed(bytes(data))

    def test_bad_kind_raises(self):
        data = bytearray(encode_frame(KIND_REQUEST, 1, {"q": "retire",
                                                        "name": "m"}))
        data[3] = 42
        with pytest.raises(ProtocolError, match="kind"):
            FrameDecoder().feed(bytes(data))
        with pytest.raises(ProtocolError, match="kind"):
            encode_frame(42, 1, {})

    def test_oversized_announcement_raises_before_buffering(self):
        import struct

        header = struct.pack(
            "!2sBBQI", b"RS", 1, KIND_REQUEST, 1, MAX_FRAME_BYTES + 1
        )
        with pytest.raises(ProtocolError, match="ceiling"):
            FrameDecoder().feed(header)

    def test_non_json_payload_raises(self):
        import struct

        body = b"\xff\xfe not json"
        header = struct.pack(
            "!2sBBQI", b"RS", 1, KIND_REQUEST, 1, len(body)
        )
        with pytest.raises(ProtocolError, match="JSON"):
            FrameDecoder().feed(header + body)

    def test_non_object_payload_raises(self):
        import struct

        body = b"[1,2,3]"
        header = struct.pack(
            "!2sBBQI", b"RS", 1, KIND_REQUEST, 1, len(body)
        )
        with pytest.raises(ProtocolError, match="object"):
            FrameDecoder().feed(header + body)

    def test_unserializable_payload_raises(self):
        with pytest.raises(ProtocolError, match="serializable"):
            encode_frame(KIND_REQUEST, 1, {"x": object()})
        with pytest.raises(ProtocolError, match="serializable"):
            encode_frame(KIND_REQUEST, 1, {"x": float("nan")})


class TestValues:
    @pytest.mark.parametrize(
        "value", [0, 1, -7, "text", "", True, False, None, 1.5, -0.25,
                  1e300, 5e-324]
    )
    def test_json_native_values_round_trip_exactly(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_int_float_bool_stay_distinct(self):
        assert decode_value(encode_value(1)) is not True
        assert type(decode_value(encode_value(1))) is int
        assert type(decode_value(encode_value(1.0))) is float
        assert decode_value(encode_value(True)) is True

    def test_nonfinite_floats_tagged(self):
        assert encode_value(float("nan")) == {"__float__": "nan"}
        assert math.isnan(decode_value({"__float__": "nan"}))
        assert decode_value(encode_value(float("inf"))) == float("inf")
        assert decode_value(encode_value(float("-inf"))) == float("-inf")

    def test_malformed_value_payload_raises(self):
        with pytest.raises(ProtocolError):
            decode_value({"__float__": "seven"})


PREDICATES = [
    TRUE,
    FALSE,
    Comparison("age", Op.GE, 30),
    Comparison("income", Op.LT, 45_000.5),
    Comparison("name", Op.NE, "bob"),
    InSet("region", ("north", "south")),
    InSet("age", (1, 2, 3)),
    Interval("age", low=18, high=65),
    Interval("income", low=0.0, high=None, low_closed=False),
    Interval("income", low=None, high=9.5, high_closed=False),
    And((Comparison("a", Op.EQ, 1), Comparison("b", Op.EQ, 2))),
    Or((Comparison("a", Op.EQ, 1), InSet("b", ("x", "y")))),
    Not(Comparison("a", Op.GT, 0)),
    Or(
        (
            And((Comparison("a", Op.LE, 3), Interval("b", low=1, high=2))),
            Not(InSet("c", ("q",))),
        )
    ),
]


class TestPredicates:
    @pytest.mark.parametrize("predicate", PREDICATES, ids=repr)
    def test_round_trip(self, predicate):
        assert decode_predicate(encode_predicate(predicate)) == predicate

    def test_unknown_tag_raises(self):
        with pytest.raises(ProtocolError, match="unknown predicate tag"):
            decode_predicate({"p": "xor"})

    def test_malformed_payload_raises(self):
        with pytest.raises(ProtocolError):
            decode_predicate({"nope": 1})
        with pytest.raises(ProtocolError):
            decode_predicate({"p": "cmp", "col": "a"})


MINING_PREDICATES = [
    PredictionEquals("risk_tree", "high"),
    PredictionEquals("clusters", 2),
    PredictionIn("risk_tree", ("high", "medium")),
    PredictionJoinPrediction("risk_tree", "risk_nb"),
    PredictionJoinColumn("risk_tree", "risk"),
]


class TestRequests:
    @pytest.mark.parametrize("mining", MINING_PREDICATES, ids=repr)
    def test_query_request_round_trip(self, mining):
        request = QueryRequest(
            query=MiningQuery(
                "customers",
                relational_predicate=Comparison("age", Op.GE, 30),
                mining_predicates=(mining,),
            ),
            optimize=False,
            timeout=1.5,
        )
        assert decode_request(encode_request(request)) == request

    def test_match_request_round_trip(self):
        request = MatchRequest(
            rows=(
                {"age": 30, "income": 50_000.0},
                {"age": 61, "income": 9_999.25},
            ),
            segments=("young", "affluent"),
            timeout=None,
        )
        assert decode_request(encode_request(request)) == request

    def test_match_request_none_segments(self):
        request = MatchRequest(rows=({"a": 1},), segments=None)
        assert decode_request(encode_request(request)) == request

    def test_deploy_and_retire_round_trip(self, customer_tree):
        deploy = DeployRequest(model=customer_tree.to_dict(), rows=None)
        assert decode_request(encode_request(deploy)) == deploy
        retire = RetireRequest(name="risk_tree")
        assert decode_request(encode_request(retire)) == retire

    def test_unknown_request_tag_raises(self):
        with pytest.raises(ProtocolError, match="unknown request tag"):
            decode_request({"q": "explode"})

    def test_unencodable_request_raises(self):
        with pytest.raises(ProtocolError, match="cannot encode"):
            encode_request("not a request")  # type: ignore[arg-type]


class TestResponses:
    def test_serve_result_drops_report(self):
        result = ServeResult(
            rows=({"age": 30, "risk": "high"},),
            strategy="rewrite",
            queue_seconds=0.001,
            execute_seconds=0.01,
            collapsed=True,
            report="not-a-real-report",  # type: ignore[arg-type]
        )
        decoded = decode_response(encode_response(result))
        assert decoded.rows == result.rows
        assert decoded.strategy == "rewrite"
        assert decoded.collapsed is True
        assert decoded.report is None

    def test_segment_match_result_round_trip(self):
        result = SegmentMatchResult(
            memberships=(("young",), (), ("young", "affluent")),
            segment_names=("affluent", "young"),
            catalog_version=4,
            queue_seconds=0.0,
            match_seconds=0.002,
            collapsed=False,
            coalesced=True,
            mask_stats=MaskCacheStats(
                computed=3, shared=1, constants_skipped=0,
                plan_hits=2, plan_misses=1,
            ),
        )
        assert decode_response(encode_response(result)) == result

    def test_control_results_round_trip(self):
        deploy = DeployResult(
            name="m", version=2, catalog_version=5,
            labels=("high", "low"),
        )
        assert decode_response(encode_response(deploy)) == deploy
        retire = RetireResult(name="m", version=2)
        assert decode_response(encode_response(retire)) == retire

    def test_unknown_response_tag_raises(self):
        with pytest.raises(ProtocolError, match="unknown response tag"):
            decode_response({"r": "explode"})


class TestErrors:
    def test_every_typed_error_round_trips_by_class(self):
        for name in dir(exceptions):
            cls = getattr(exceptions, name)
            if not (isinstance(cls, type) and issubclass(cls, ReproError)):
                continue
            decoded = decode_error(encode_error(cls("boom")))
            assert type(decoded) is cls
            assert "boom" in str(decoded)

    def test_specific_serving_errors(self):
        assert isinstance(
            decode_error(encode_error(QueueFullError("full"))),
            QueueFullError,
        )
        assert isinstance(
            decode_error(encode_error(RequestTimeoutError("late"))),
            RequestTimeoutError,
        )

    def test_unknown_class_falls_back_to_serve_error(self):
        decoded = decode_error(
            {"error": "FutureProtocolError", "message": "huh"}
        )
        assert type(decoded) is ServeError
        assert "FutureProtocolError" in str(decoded)
        assert "huh" in str(decoded)

    def test_malformed_error_payload_raises(self):
        with pytest.raises(ProtocolError):
            decode_error({"message": "no class"})
