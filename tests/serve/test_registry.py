"""Model registry lifecycle: register / deploy / retire, warm-starts."""

from __future__ import annotations

import pytest

from repro.core.optimizer import MiningQuery
from repro.core.rewrite import PredictionEquals
from repro.exceptions import CatalogError, RegistryError
from repro.ir import intern
from repro.serve import ModelRegistry, model_fingerprint
from repro.sql.plancache import PlanCache


@pytest.fixture()
def registry(customer_tree):
    reg = ModelRegistry(max_nodes=100)
    reg.register(customer_tree)
    return reg


class TestRegister:
    def test_versions_increase(self, registry, customer_tree):
        second = registry.register(customer_tree)
        assert second.version == 2
        assert [v.version for v in registry.versions("risk_tree")] == [1, 2]

    def test_register_is_cheap(self, registry):
        entry = registry.versions("risk_tree")[0]
        assert entry.envelopes is None  # derivation deferred to deploy
        assert not entry.deployed

    def test_fingerprint_is_content_based(self, customer_tree, customer_nb):
        assert model_fingerprint(customer_tree) == model_fingerprint(
            customer_tree
        )
        assert model_fingerprint(customer_tree) != model_fingerprint(
            customer_nb
        )

    def test_unknown_name(self, registry):
        with pytest.raises(RegistryError, match="no model named"):
            registry.versions("nope")
        with pytest.raises(RegistryError, match="no model named"):
            registry.deploy("nope")


class TestDeploy:
    def test_deploy_derives_and_publishes(self, registry, customer_tree):
        entry = registry.deploy("risk_tree")
        assert entry.deployed
        assert entry.envelopes
        assert set(entry.envelope_fingerprints) == set(entry.envelopes)
        # Envelope predicates were interned: re-interning is the identity.
        for envelope in entry.envelopes.values():
            assert intern(envelope.predicate) is envelope.predicate
        assert registry.catalog.entry("risk_tree").model is customer_tree

    def test_deploy_specific_version(self, registry, customer_tree):
        registry.register(customer_tree)
        entry = registry.deploy("risk_tree", version=1)
        assert entry.version == 1
        assert registry.deployed_version("risk_tree") is entry
        with pytest.raises(RegistryError, match="no version 7"):
            registry.deploy("risk_tree", version=7)

    def test_redeploy_warm_starts(self, registry, customer_tree):
        first = registry.deploy("risk_tree")
        registry.retire("risk_tree")
        second_version = registry.register(customer_tree)
        second = registry.deploy("risk_tree")
        assert second is second_version
        # Same model content -> the envelope cache is reused wholesale.
        assert second.envelopes is first.envelopes

    def test_redeploy_invalidates_cached_plans(
        self, registry, customer_tree
    ):
        registry.deploy("risk_tree")
        cache = PlanCache(8)
        query = MiningQuery(
            "customers",
            mining_predicates=(PredictionEquals("risk_tree", "high"),),
        )
        cache.get_or_optimize(query, registry.catalog)
        registry.register(customer_tree, deploy=True)  # bumps version
        cache.get_or_optimize(query, registry.catalog)
        assert cache.stats.invalidations == 1
        assert cache.stats.hits == 0


class TestRetire:
    def test_retire_removes_from_catalog(self, registry):
        registry.deploy("risk_tree")
        entry = registry.retire("risk_tree")
        assert not entry.deployed
        assert registry.deployed_version("risk_tree") is None
        with pytest.raises(CatalogError):
            registry.catalog.entry("risk_tree")
        # The history survives for redeployment.
        assert registry.registered_names() == ["risk_tree"]

    def test_retire_not_deployed(self, registry):
        with pytest.raises(RegistryError, match="not deployed"):
            registry.retire("risk_tree")


class TestDiskEnvelopeCache:
    def _deploy(self, customer_tree, cache_dir):
        registry = ModelRegistry(max_nodes=100, cache_dir=cache_dir)
        registry.register(customer_tree)
        return registry, registry.deploy("risk_tree")

    def test_deploy_persists_an_envelope_file(
        self, tmp_path, customer_tree
    ):
        _, entry = self._deploy(customer_tree, tmp_path)
        target = tmp_path / f"envelopes_{entry.fingerprint}.json"
        assert target.exists()
        # No stray tempfiles after the atomic replace.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_fresh_registry_warm_starts_from_disk(
        self, tmp_path, customer_tree, monkeypatch
    ):
        from repro.serve import registry as registry_module

        _, cold = self._deploy(customer_tree, tmp_path)
        counted: list[str] = []
        monkeypatch.setattr(
            registry_module.obs,
            "add_counter",
            lambda name, value=1: counted.append(name),
        )
        _, warm = self._deploy(customer_tree, tmp_path)
        assert "serve.registry.warm_start.disk_hit" in counted
        assert set(warm.envelopes) == set(cold.envelopes)
        for label, envelope in warm.envelopes.items():
            expected = cold.envelopes[label]
            assert envelope.predicate is intern(expected.predicate)
            assert envelope.exact == expected.exact
            assert envelope.model_kind == expected.model_kind

    def test_warm_start_serves_identical_rows(
        self, tmp_path, customer_tree, serve_db
    ):
        from repro.sql.miningext import PredictionJoinExecutor

        query = MiningQuery(
            "customers",
            mining_predicates=(PredictionEquals("risk_tree", "high"),),
        )
        registries = [
            self._deploy(customer_tree, tmp_path)[0] for _ in range(2)
        ]
        rows = [
            PredictionJoinExecutor(serve_db, r.catalog)
            .execute(query)
            .rows
            for r in registries
        ]
        assert rows[0] == rows[1]

    def test_corrupt_cache_file_is_a_miss_not_an_error(
        self, tmp_path, customer_tree, monkeypatch
    ):
        from repro.serve import registry as registry_module

        _, entry = self._deploy(customer_tree, tmp_path)
        target = tmp_path / f"envelopes_{entry.fingerprint}.json"
        target.write_text("{ not json", encoding="utf-8")
        counted: list[str] = []
        monkeypatch.setattr(
            registry_module.obs,
            "add_counter",
            lambda name, value=1: counted.append(name),
        )
        _, rederived = self._deploy(customer_tree, tmp_path)
        assert "serve.registry.warm_start.disk_miss" in counted
        assert rederived.envelopes
        # The re-derivation healed the cache file.
        assert "not json" not in target.read_text(encoding="utf-8")

    def test_fingerprint_mismatch_is_rejected(
        self, tmp_path, customer_tree
    ):
        import json

        _, entry = self._deploy(customer_tree, tmp_path)
        target = tmp_path / f"envelopes_{entry.fingerprint}.json"
        payload = json.loads(target.read_text(encoding="utf-8"))
        payload["fingerprint"] = "0" * 16
        target.write_text(json.dumps(payload), encoding="utf-8")
        registry = ModelRegistry(max_nodes=100, cache_dir=tmp_path)
        registry.register(customer_tree)
        entry = registry.deploy("risk_tree")  # re-derives, no crash
        assert entry.envelopes

    def test_environment_variable_configures_the_directory(
        self, tmp_path, customer_tree, monkeypatch
    ):
        from repro.serve.registry import ENV_ENVELOPE_CACHE_DIR

        monkeypatch.setenv(ENV_ENVELOPE_CACHE_DIR, str(tmp_path))
        registry = ModelRegistry(max_nodes=100)
        registry.register(customer_tree)
        entry = registry.deploy("risk_tree")
        target = tmp_path / f"envelopes_{entry.fingerprint}.json"
        assert target.exists()

    def test_no_cache_dir_means_no_files(self, customer_tree, tmp_path):
        registry = ModelRegistry(max_nodes=100)
        registry.register(customer_tree)
        registry.deploy("risk_tree")
        assert list(tmp_path.iterdir()) == []
