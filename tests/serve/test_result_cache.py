"""Engine-side result cache: TTL, LRU bound, collapse-key hits."""

from __future__ import annotations

import time

import pytest

from repro.serve import QueryService, ResultCache


class TestResultCacheUnit:
    def test_put_get_returns_the_same_object(self):
        cache = ResultCache(ttl=60.0)
        sentinel = object()
        cache.put(("k",), sentinel)
        assert cache.get(("k",)) is sentinel
        assert cache.hits == 1
        assert cache.misses == 0

    def test_miss_on_absent_key(self):
        cache = ResultCache(ttl=60.0)
        assert cache.get(("absent",)) is None
        assert cache.misses == 1

    def test_entries_expire_after_ttl(self):
        cache = ResultCache(ttl=0.02)
        cache.put(("k",), "value")
        assert cache.get(("k",)) == "value"
        time.sleep(0.04)
        assert cache.get(("k",)) is None
        assert len(cache) == 0  # the expired entry was dropped

    def test_lru_bound_evicts_oldest(self):
        cache = ResultCache(ttl=60.0, max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh a's recency
        cache.put(("c",), 3)  # evicts b, the least recently used
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3

    @pytest.mark.parametrize("ttl", [0, -1.0])
    def test_rejects_bad_ttl(self, ttl):
        with pytest.raises(ValueError, match="ttl"):
            ResultCache(ttl=ttl)

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(ttl=1.0, max_entries=0)


class TestEngineIntegration:
    def test_off_by_default(self, serve_db, deployed_registry):
        with QueryService(serve_db, deployed_registry, workers=1) as svc:
            assert svc.engine.result_cache is None

    def test_repeat_query_is_served_from_cache(
        self, serve_db, deployed_registry, label_queries
    ):
        with QueryService(
            serve_db, deployed_registry, workers=1, result_ttl=60.0
        ) as service:
            cache = service.engine.result_cache
            first = service.execute(label_queries[0])
            assert cache.hits == 0
            second = service.execute(label_queries[0])
            # The cached hit returns the original result object, so
            # byte-identity is free.
            assert second is first
            assert cache.hits == 1
            # A different query is its own entry.
            other = service.execute(label_queries[1])
            assert other is not first
            assert other.rows != first.rows or other is not first

    def test_expired_entry_re_executes(
        self, serve_db, deployed_registry, label_queries
    ):
        with QueryService(
            serve_db, deployed_registry, workers=1, result_ttl=0.05
        ) as service:
            first = service.execute(label_queries[0])
            time.sleep(0.1)
            second = service.execute(label_queries[0])
            assert second is not first
            assert second.rows == first.rows  # still bit-identical
            assert service.engine.result_cache.hits == 0

    def test_cached_hits_bypass_admission(
        self, serve_db, deployed_registry, label_queries
    ):
        with QueryService(
            serve_db,
            deployed_registry,
            workers=1,
            max_pending=1,
            result_ttl=60.0,
        ) as service:
            service.execute(label_queries[0])
            # A cached request resolves synchronously without taking the
            # single queue slot: submit many at once and none sheds.
            futures = [
                service.submit(label_queries[0]) for _ in range(8)
            ]
            results = [f.result(timeout=10) for f in futures]
            assert all(r is results[0] for r in results)
