"""Client-side retries: policy determinism, retry scope, router respawn."""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import Future

import pytest

from repro.exceptions import (
    QueueFullError,
    RequestTimeoutError,
    TransportError,
    WorkerCrashedError,
)
from repro.serve import RetryPolicy, RetryingTransport
from repro.serve.transport import Transport, connect_tcp


class TestRetryPolicy:
    def test_delays_are_deterministic_per_seed(self):
        policy = RetryPolicy(retries=5, seed=7)
        assert policy.delays() == policy.delays()
        assert RetryPolicy(retries=5, seed=8).delays() != policy.delays()

    def test_delays_grow_exponentially_within_jitter(self):
        policy = RetryPolicy(
            retries=4,
            backoff=0.1,
            multiplier=2.0,
            max_backoff=10.0,
            jitter=0.5,
            seed=0,
        )
        delays = policy.delays()
        assert len(delays) == 4
        for attempt, delay in enumerate(delays):
            nominal = 0.1 * 2.0**attempt
            assert nominal * 0.5 <= delay <= nominal

    def test_backoff_is_capped(self):
        policy = RetryPolicy(
            retries=6,
            backoff=0.1,
            multiplier=10.0,
            max_backoff=0.4,
            jitter=0.0,
        )
        assert policy.delays() == [0.1, 0.4, 0.4, 0.4, 0.4, 0.4]

    @pytest.mark.parametrize(
        ("field", "value", "match"),
        [
            ("retries", 0, "retries"),
            ("backoff", 0.0, "backoff"),
            ("multiplier", 0.5, "multiplier"),
            ("max_backoff", 0.01, "max_backoff"),
            ("jitter", 1.5, "jitter"),
        ],
    )
    def test_validation(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**{field: value})


class ScriptedInner(Transport):
    """Raises the scripted errors in order, then returns ``payload``."""

    name = "scripted"

    def __init__(self, errors, payload="served") -> None:
        self.errors = list(errors)
        self.payload = payload
        self.request_calls = 0
        self.submit_calls = 0
        self.closed = False

    def submit(self, request) -> "Future":
        self.submit_calls += 1
        future: "Future" = Future()
        future.set_result(self.payload)
        return future

    def request(self, request):
        self.request_calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return self.payload

    def control(self, request):
        return "controlled"

    def close(self) -> None:
        self.closed = True


def fast_policy(retries=3):
    return RetryPolicy(
        retries=retries, backoff=0.001, max_backoff=0.002, seed=0
    )


class TestRetryingTransport:
    def test_retries_worker_crashes_until_success(self):
        inner = ScriptedInner(
            [WorkerCrashedError("gone"), WorkerCrashedError("gone")]
        )
        transport = RetryingTransport(inner, fast_policy())
        assert transport.request("req") == "served"
        assert inner.request_calls == 3

    def test_exhausted_retries_raise_the_last_error(self):
        inner = ScriptedInner([WorkerCrashedError("gone")] * 10)
        transport = RetryingTransport(inner, fast_policy(retries=2))
        with pytest.raises(WorkerCrashedError):
            transport.request("req")
        assert inner.request_calls == 3  # first try + 2 retries

    def test_timeouts_are_never_retried(self):
        inner = ScriptedInner([RequestTimeoutError("deadline")])
        transport = RetryingTransport(inner, fast_policy())
        with pytest.raises(RequestTimeoutError):
            transport.request("req")
        assert inner.request_calls == 1

    def test_admission_errors_are_never_retried(self):
        inner = ScriptedInner([QueueFullError("full")])
        transport = RetryingTransport(inner, fast_policy())
        with pytest.raises(QueueFullError):
            transport.request("req")
        assert inner.request_calls == 1

    def test_transport_errors_need_a_reconnect_factory(self):
        inner = ScriptedInner([TransportError("conn lost")])
        transport = RetryingTransport(inner, fast_policy())
        with pytest.raises(TransportError):
            transport.request("req")
        assert inner.request_calls == 1

    def test_reconnect_swaps_the_inner_transport(self):
        dead = ScriptedInner([TransportError("conn lost")])
        dead.closed = True
        replacement = ScriptedInner([])
        transport = RetryingTransport(
            dead, fast_policy(), reconnect=lambda: replacement
        )
        assert transport.request("req") == "served"
        assert transport.inner is replacement
        assert dead.closed

    def test_submit_and_control_are_not_retried(self):
        inner = ScriptedInner([])
        transport = RetryingTransport(inner, fast_policy())
        assert transport.submit("req").result() == "served"
        assert transport.control("ctl") == "controlled"
        assert inner.submit_calls == 1
        assert inner.request_calls == 0


class TestConnectTcpRetry:
    def _refused_port(self) -> int:
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_refusal_without_retry_raises_immediately(self):
        port = self._refused_port()
        with pytest.raises(OSError):
            connect_tcp("127.0.0.1", port, timeout=1)

    def test_refusal_with_retry_gives_typed_error_after_attempts(self):
        port = self._refused_port()
        policy = RetryPolicy(
            retries=2, backoff=0.01, max_backoff=0.02, seed=0
        )
        with pytest.raises(TransportError, match="after 3 attempts"):
            connect_tcp("127.0.0.1", port, timeout=1, retry=policy)

    def test_retry_bridges_a_late_starting_server(
        self, serve_db, deployed_registry
    ):
        from repro.serve.engine import ServeEngine
        from repro.serve.transport import TCPServer

        port = self._refused_port()
        engine = ServeEngine(serve_db, deployed_registry, workers=1)
        holder: dict = {}

        def start_late() -> None:
            time.sleep(0.15)
            holder["server"] = TCPServer(
                engine, host="127.0.0.1", port=port
            )

        thread = threading.Thread(target=start_late, daemon=True)
        thread.start()
        try:
            client = connect_tcp(
                "127.0.0.1",
                port,
                timeout=5,
                retry=RetryPolicy(
                    retries=20,
                    backoff=0.05,
                    multiplier=1.0,
                    max_backoff=0.05,
                    jitter=0.0,
                ),
            )
            client.close()
        finally:
            thread.join(timeout=10)
            server = holder.get("server")
            if server is not None:
                server.close()
            engine.shutdown()


class TestRouterRespawnRegression:
    def test_killed_worker_is_bridged_by_retry(self):
        """The satellite's acceptance case: a SIGKILLed router worker
        makes bare requests fail typed, but a RetryingTransport rides
        out the respawn and the caller never sees the crash."""
        import os
        import signal

        from repro.serve.engine import DeployRequest, QueryRequest
        from repro.serve.router import ProcessRouter
        from tests.serve.test_router import bootstrap, router_queries  # noqa: F401
        from repro.core.optimizer import MiningQuery
        from repro.core.rewrite import PredictionEquals
        from repro.mining.decision_tree import DecisionTreeLearner
        from tests.conftest import CUSTOMER_FEATURES, make_customer_rows

        tree = DecisionTreeLearner(
            CUSTOMER_FEATURES, "risk", max_depth=4, name="router_tree"
        ).fit(make_customer_rows(120, seed=11))
        query = MiningQuery(
            "customers",
            mining_predicates=(
                PredictionEquals(
                    "router_tree", sorted(tree.class_labels, key=str)[0]
                ),
            ),
        )
        with ProcessRouter(bootstrap, processes=1) as router:
            router.control(DeployRequest(model=tree.to_dict()))
            retrying = RetryingTransport(
                router,
                RetryPolicy(
                    retries=40,
                    backoff=0.05,
                    multiplier=1.2,
                    max_backoff=0.5,
                    jitter=0.0,
                ),
            )
            request = QueryRequest(query=query, timeout=10.0)
            baseline = retrying.request(request)
            victim = router.worker_pids[0]
            os.kill(victim, signal.SIGKILL)
            # Through the retry wrapper the respawn is invisible; the
            # replayed control log serves the same model again.
            result = retrying.request(request)
            assert result.rows_returned == baseline.rows_returned
            assert router.worker_pids[0] != victim
