"""ProcessRouter: deterministic fan-out, broadcast control, respawn.

Every worker process rebuilds the dataset through the top-level
``bootstrap`` below and receives models as broadcast ``DeployRequest``
messages, so nothing is shared by reference.  Byte-identity to serial
execution must hold for every process count, and a SIGKILLed worker
must fail in-flight requests typed, respawn, replay the control log,
and serve again.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.optimizer import MiningQuery
from repro.core.rewrite import PredictionEquals
from repro.exceptions import ServeError, WorkerCrashedError
from repro.mining.decision_tree import DecisionTreeLearner
from repro.serve.engine import (
    DeployRequest,
    QueryRequest,
    RetireRequest,
    ServeEngine,
)
from repro.serve.registry import ModelRegistry
from repro.serve.router import ProcessRouter
from repro.sql.database import Database, load_table
from repro.sql.miningext import PredictionJoinExecutor
from repro.sql.plancache import PlanCache

from tests.conftest import CUSTOMER_FEATURES, make_customer_rows
from tests.serve.test_stress import byte_image, schedule_for

ROWS = 120
SEED = 11


def build_database() -> Database:
    db = Database()
    load_table(
        db,
        "customers",
        [
            {c: row[c] for c in CUSTOMER_FEATURES}
            for row in make_customer_rows(ROWS, seed=SEED)
        ],
    )
    db.create_index("customers", ["age"])
    return db


def bootstrap() -> ServeEngine:
    """Worker-process engine factory (top-level: picklable, importable)."""
    return ServeEngine(
        build_database(),
        ModelRegistry(max_nodes=150),
        workers=2,
        plan_cache=PlanCache(64),
    )


@pytest.fixture(scope="module")
def router_tree():
    return DecisionTreeLearner(
        CUSTOMER_FEATURES, "risk", max_depth=4, name="router_tree"
    ).fit(make_customer_rows(ROWS, seed=SEED))


@pytest.fixture(scope="module")
def router_queries(router_tree):
    return [
        MiningQuery(
            "customers",
            mining_predicates=(PredictionEquals("router_tree", label),),
        )
        for label in sorted(router_tree.class_labels, key=str)
    ]


@pytest.fixture(scope="module")
def expected_images(router_tree, router_queries):
    db = build_database()
    registry = ModelRegistry(max_nodes=150)
    registry.register(router_tree, deploy=True)
    executor = PredictionJoinExecutor(db, registry.catalog)
    schedule = schedule_for(router_queries, 18)
    images = [
        byte_image(executor.execute(router_queries[i]).rows)
        for i in schedule
    ]
    db.close()
    return schedule, images


def deploy_through(router, router_tree):
    return router.control(DeployRequest(model=router_tree.to_dict()))


@pytest.mark.parametrize("processes", [1, 2])
def test_byte_identical_across_process_counts(
    processes, router_tree, router_queries, expected_images
):
    schedule, expected = expected_images
    with ProcessRouter(bootstrap, processes=processes) as router:
        deployed = deploy_through(router, router_tree)
        assert deployed.name == "router_tree"
        futures = [
            router.submit(QueryRequest(query=router_queries[i]))
            for i in schedule
        ]
        images = [byte_image(f.result(timeout=60).rows) for f in futures]
    assert images == expected


def test_routing_is_deterministic_and_spread(router_queries):
    with ProcessRouter(bootstrap, processes=2) as router:
        requests = [QueryRequest(query=q) for q in router_queries]
        first = [router.route_index(r) for r in requests]
        second = [router.route_index(r) for r in requests]
        assert first == second
        # The timeout is delivery metadata: it must not move a request.
        with_timeouts = [
            router.route_index(
                QueryRequest(query=q, timeout=1.0 + i)
            )
            for i, q in enumerate(router_queries)
        ]
        assert with_timeouts == first


def test_control_broadcast_agrees_across_replicas(router_tree):
    with ProcessRouter(bootstrap, processes=2) as router:
        deployed = deploy_through(router, router_tree)
        assert deployed.version == 1
        assert set(deployed.labels) <= set(router_tree.class_labels)
        assert deployed.labels == tuple(sorted(deployed.labels, key=str))
        retired = router.control(RetireRequest(name="router_tree"))
        assert retired.version == 1


def test_control_through_submit_is_rejected(router_tree):
    with ProcessRouter(bootstrap, processes=1) as router:
        with pytest.raises(ServeError, match="broadcast"):
            router.submit(DeployRequest(model=router_tree.to_dict()))


def test_killed_worker_fails_typed_and_respawns(
    router_tree, router_queries
):
    with ProcessRouter(bootstrap, processes=2) as router:
        deploy_through(router, router_tree)
        request = QueryRequest(query=router_queries[0])
        slot = router.route_index(request)
        victim = router.worker_pids[slot]
        os.kill(victim, signal.SIGKILL)
        # The slot's in-flight and racing requests fail typed until the
        # respawn completes; afterwards the same request must succeed
        # against the replayed catalog.
        deadline = time.monotonic() + 30
        while True:
            try:
                result = router.request(
                    QueryRequest(query=router_queries[0], timeout=10.0)
                )
                break
            except WorkerCrashedError:
                assert time.monotonic() < deadline
                time.sleep(0.05)
        assert result.rows_returned >= 0
        assert victim not in router.worker_pids
        assert len(router.worker_pids) == 2


def test_closed_router_is_typed(router_queries):
    router = ProcessRouter(bootstrap, processes=1)
    router.close()
    with pytest.raises(WorkerCrashedError, match="closed"):
        router.submit(QueryRequest(query=router_queries[0]))


def test_transport_matrix_byte_identical(
    router_tree, router_queries, expected_images
):
    """The acceptance gate: one deterministic request schedule returns
    byte-identical results across in-process, socketpair, TCP, and
    1/2/4-process router configurations."""
    from repro.serve.transport import (
        LoopbackTransport,
        TCPServer,
        connect_tcp,
        serve_socketpair,
    )

    schedule, expected = expected_images

    def run(transport):
        futures = [
            transport.submit(QueryRequest(query=router_queries[i]))
            for i in schedule
        ]
        return [byte_image(f.result(timeout=60).rows) for f in futures]

    images = {}
    with bootstrap() as engine:
        engine.control(DeployRequest(model=router_tree.to_dict()))
        images["inproc"] = run(LoopbackTransport(engine))
        client, server = serve_socketpair(engine)
        try:
            images["socketpair"] = run(client)
        finally:
            client.close()
            server.close()
        with TCPServer(engine) as tcp_server:
            host, port = tcp_server.address
            tcp_client = connect_tcp(host, port)
            try:
                images["tcp"] = run(tcp_client)
            finally:
                tcp_client.close()
    for processes in (1, 2, 4):
        with ProcessRouter(bootstrap, processes=processes) as router:
            deploy_through(router, router_tree)
            images[f"router-{processes}"] = run(router)
    for name, result in images.items():
        assert result == expected, f"{name} diverged from serial"
