"""QueryService behavior: correctness, collapsing, timeouts, shutdown."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.optimizer import MiningQuery
from repro.core.rewrite import PredictionEquals
from repro.exceptions import (
    CatalogError,
    QueueFullError,
    RequestTimeoutError,
    ServiceStoppedError,
)
from repro.serve import ModelRegistry, QueryService
from repro.sql.miningext import PredictionJoinExecutor


@pytest.fixture()
def gate(monkeypatch):
    """Blocks every executor.execute until released; deterministic races.

    Returns (release_event, started_event): ``started`` is set when a
    worker has begun executing, ``release`` lets executions proceed.
    """
    release = threading.Event()
    started = threading.Event()
    original = PredictionJoinExecutor.execute

    def gated(self, query, optimize_query=True):
        started.set()
        if not release.wait(timeout=10):
            raise AssertionError("gate never released")
        return original(self, query, optimize_query=optimize_query)

    monkeypatch.setattr(PredictionJoinExecutor, "execute", gated)
    yield release, started
    release.set()


def serial_rows(serve_db, deployed_registry, queries):
    executor = PredictionJoinExecutor(serve_db, deployed_registry.catalog)
    return [executor.execute(q).rows for q in queries]


class TestExecution:
    def test_results_match_serial(
        self, serve_db, deployed_registry, label_queries
    ):
        expected = serial_rows(serve_db, deployed_registry, label_queries)
        with QueryService(serve_db, deployed_registry, workers=3) as svc:
            for query, rows in zip(label_queries, expected):
                result = svc.execute(query)
                assert result.rows == rows
                assert result.strategy in ("optimized", "extract-and-mine")
                assert result.report is not None

    def test_many_concurrent_submissions(
        self, serve_db, deployed_registry, label_queries
    ):
        expected = serial_rows(serve_db, deployed_registry, label_queries)
        with QueryService(
            serve_db, deployed_registry, workers=4, max_pending=64
        ) as svc:
            futures = [
                svc.submit(label_queries[i % len(label_queries)])
                for i in range(30)
            ]
            for i, future in enumerate(futures):
                result = future.result(timeout=30)
                assert result.rows == expected[i % len(label_queries)]
            stats = svc.stats.snapshot()
        assert stats["submitted"] == 30
        assert stats["shed"] == stats["timeouts"] == stats["errors"] == 0
        assert stats["completed"] + stats["collapsed"] == 30

    def test_unoptimized_requests(
        self, serve_db, deployed_registry, label_queries
    ):
        query = label_queries[0]
        executor = PredictionJoinExecutor(
            serve_db, deployed_registry.catalog
        )
        expected = executor.execute(query, optimize_query=False).rows
        with QueryService(serve_db, deployed_registry, workers=2) as svc:
            result = svc.execute(query, optimize=False)
            assert result.rows == expected
            assert result.strategy == "extract-and-mine"


class TestCollapsing:
    def test_duplicates_collapse_onto_inflight(
        self, serve_db, deployed_registry, label_queries, gate
    ):
        release, started = gate
        # execute_optimized is not gated — a safe serial reference.
        expected = PredictionJoinExecutor(
            serve_db, deployed_registry.catalog
        ).execute_optimized(label_queries[0]).rows
        svc = QueryService(serve_db, deployed_registry, workers=1)
        try:
            first = svc.submit(label_queries[0])
            assert started.wait(timeout=5)  # now executing
            duplicates = [svc.submit(label_queries[0]) for _ in range(3)]
            release.set()
            assert first.result(timeout=10).rows == expected
            for future in duplicates:
                result = future.result(timeout=10)
                assert result.rows == expected
                assert result.collapsed
            assert svc.stats.collapsed == 3
            assert svc.stats.completed == 1
        finally:
            svc.shutdown()

    def test_distinct_queries_do_not_collapse(
        self, serve_db, deployed_registry, label_queries, gate
    ):
        release, started = gate
        svc = QueryService(serve_db, deployed_registry, workers=1)
        try:
            svc.submit(label_queries[0])
            assert started.wait(timeout=5)
            other = svc.submit(label_queries[1])
            release.set()
            assert not other.result(timeout=10).collapsed
            assert svc.stats.collapsed == 0
        finally:
            svc.shutdown()

    def test_collapsing_can_be_disabled(
        self, serve_db, deployed_registry, label_queries, gate
    ):
        release, started = gate
        svc = QueryService(
            serve_db, deployed_registry, workers=1, collapsing=False
        )
        try:
            svc.submit(label_queries[0])
            assert started.wait(timeout=5)
            duplicate = svc.submit(label_queries[0])
            release.set()
            assert not duplicate.result(timeout=10).collapsed
            assert svc.stats.collapsed == 0
        finally:
            svc.shutdown()


class TestAdmissionAndTimeouts:
    def test_queue_full_sheds(
        self, serve_db, deployed_registry, label_queries, gate
    ):
        release, started = gate
        svc = QueryService(
            serve_db, deployed_registry, workers=1, max_pending=2
        )
        try:
            svc.submit(label_queries[0])
            assert started.wait(timeout=5)
            svc.submit(label_queries[1])
            with pytest.raises(QueueFullError):
                svc.submit(label_queries[2])
            assert svc.stats.shed == 1
            release.set()
        finally:
            svc.shutdown()

    def test_queued_request_times_out(
        self, serve_db, deployed_registry, label_queries, gate
    ):
        release, started = gate
        svc = QueryService(serve_db, deployed_registry, workers=1)
        try:
            svc.submit(label_queries[0])
            assert started.wait(timeout=5)
            doomed = svc.submit(label_queries[1], timeout=0.05)
            time.sleep(0.1)  # let the deadline lapse while queued
            release.set()
            with pytest.raises(RequestTimeoutError):
                doomed.result(timeout=10)
            assert svc.stats.timeouts == 1
        finally:
            svc.shutdown()

    def test_execute_enforces_deadline_while_waiting(
        self, serve_db, deployed_registry, label_queries, gate
    ):
        release, started = gate
        svc = QueryService(serve_db, deployed_registry, workers=1)
        try:
            svc.submit(label_queries[0])
            assert started.wait(timeout=5)
            with pytest.raises(RequestTimeoutError):
                svc.execute(label_queries[1], timeout=0.05)
            release.set()
        finally:
            svc.shutdown()

    def test_default_timeout_applies(
        self, serve_db, deployed_registry, label_queries, gate
    ):
        release, started = gate
        svc = QueryService(
            serve_db, deployed_registry, workers=1, default_timeout=0.05
        )
        try:
            svc.submit(label_queries[0])
            assert started.wait(timeout=5)
            doomed = svc.submit(label_queries[1])
            time.sleep(0.1)
            release.set()
            with pytest.raises(RequestTimeoutError):
                doomed.result(timeout=10)
        finally:
            svc.shutdown()


class TestLifecycle:
    def test_drain_then_clean_shutdown(
        self, serve_db, deployed_registry, label_queries
    ):
        svc = QueryService(serve_db, deployed_registry, workers=2)
        futures = [svc.submit(q) for q in label_queries]
        assert svc.drain(timeout=30)
        assert svc.queue_depth == 0
        assert all(f.done() for f in futures)
        assert svc.shutdown() is True
        assert svc.shutdown() is True  # idempotent

    def test_stopped_service_refuses_submissions(
        self, serve_db, deployed_registry, label_queries
    ):
        svc = QueryService(serve_db, deployed_registry, workers=1)
        svc.shutdown()
        with pytest.raises(ServiceStoppedError):
            svc.submit(label_queries[0])

    def test_forced_shutdown_fails_queued_requests(
        self, serve_db, deployed_registry, label_queries, gate
    ):
        release, started = gate
        svc = QueryService(serve_db, deployed_registry, workers=1)
        executing = svc.submit(label_queries[0])
        assert started.wait(timeout=5)
        queued = [svc.submit(q) for q in label_queries[1:3]]
        timer = threading.Timer(0.2, release.set)
        timer.start()
        clean = svc.shutdown(drain=False)
        timer.cancel()
        release.set()
        assert clean is False
        assert executing.result(timeout=10).rows is not None
        for future in queued:
            with pytest.raises(ServiceStoppedError):
                future.result(timeout=10)

    def test_retired_model_fails_typed(self, serve_db, customer_tree):
        registry = ModelRegistry(max_nodes=100)
        registry.register(customer_tree, deploy=True)
        query = MiningQuery(
            "customers",
            mining_predicates=(PredictionEquals("risk_tree", "high"),),
        )
        with QueryService(serve_db, registry, workers=1) as svc:
            assert svc.execute(query).rows is not None
            registry.retire("risk_tree")
            with pytest.raises(CatalogError):
                svc.execute(query)

    def test_rejects_bad_worker_count(self, serve_db, deployed_registry):
        with pytest.raises(ValueError, match="workers"):
            QueryService(serve_db, deployed_registry, workers=0)
