"""Concurrency stress: byte-identity to serial under adverse conditions.

The acceptance bar of the serving layer: N workers executing a mixed
query schedule return exactly the rows serial execution returns — also
while the shared plan cache is evicting (tiny capacity) and while some
requests carry already-lapsed deadlines (injected timeouts).
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import RequestTimeoutError
from repro.serve import QueryService
from repro.sql.miningext import PredictionJoinExecutor
from repro.sql.plancache import PlanCache


def byte_image(rows) -> bytes:
    """A canonical byte serialization of a result row set."""
    return json.dumps(rows, sort_keys=True, default=str).encode()


def schedule_for(queries, length: int) -> list[int]:
    """A deterministic mixed schedule skewed toward the first queries."""
    indices = []
    for i in range(length):
        indices.append((i * i + i // 3) % len(queries))
    return indices


@pytest.mark.parametrize("workers", [2, 4])
def test_concurrent_identical_to_serial(
    serve_db, deployed_registry, label_queries, workers
):
    schedule = schedule_for(label_queries, 48)
    serial_executor = PredictionJoinExecutor(
        serve_db, deployed_registry.catalog
    )
    expected = [
        byte_image(serial_executor.execute(label_queries[i]).rows)
        for i in schedule
    ]
    with QueryService(
        serve_db, deployed_registry, workers=workers, max_pending=64
    ) as svc:
        futures = [svc.submit(label_queries[i]) for i in schedule]
        images = [
            byte_image(f.result(timeout=60).rows) for f in futures
        ]
        stats = svc.stats.snapshot()
    assert images == expected
    assert stats["shed"] == stats["timeouts"] == stats["errors"] == 0
    assert stats["completed"] + stats["collapsed"] == len(schedule)


def test_identical_under_plan_cache_eviction(
    serve_db, deployed_registry, label_queries
):
    # Capacity 2 over ~6 distinct queries: constant eviction churn.
    cache = PlanCache(capacity=2)
    schedule = schedule_for(label_queries, 36)
    serial_executor = PredictionJoinExecutor(
        serve_db, deployed_registry.catalog
    )
    expected = [
        byte_image(serial_executor.execute(label_queries[i]).rows)
        for i in schedule
    ]
    with QueryService(
        serve_db,
        deployed_registry,
        workers=4,
        max_pending=64,
        plan_cache=cache,
    ) as svc:
        futures = [svc.submit(label_queries[i]) for i in schedule]
        images = [
            byte_image(f.result(timeout=60).rows) for f in futures
        ]
    assert images == expected
    assert len(cache) <= 2
    assert cache.stats.evictions > 0
    # Counter consistency survives concurrent eviction churn.
    assert cache.stats.lookups == cache.stats.hits + cache.stats.misses


def test_identical_under_injected_timeouts(
    serve_db, deployed_registry, label_queries
):
    """Every 5th request carries a microscopic deadline.

    Those requests either complete (they were dequeued in time) or fail
    with RequestTimeoutError — never a wrong result.  All other requests
    must stay byte-identical to serial execution.
    """
    schedule = schedule_for(label_queries, 40)
    serial_executor = PredictionJoinExecutor(
        serve_db, deployed_registry.catalog
    )
    expected = [
        byte_image(serial_executor.execute(label_queries[i]).rows)
        for i in schedule
    ]
    with QueryService(
        serve_db,
        deployed_registry,
        workers=2,
        max_pending=64,
        collapsing=False,  # timed-out twins must not satisfy others
    ) as svc:
        futures = []
        for n, i in enumerate(schedule):
            timeout = 0.000_1 if n % 5 == 4 else None
            futures.append(svc.submit(label_queries[i], timeout=timeout))
        timed_out = 0
        for n, future in enumerate(futures):
            try:
                image = byte_image(future.result(timeout=60).rows)
            except RequestTimeoutError:
                assert n % 5 == 4  # only the doomed ones may time out
                timed_out += 1
            else:
                assert image == expected[n]
        stats = svc.stats.snapshot()
    assert stats["timeouts"] == timed_out
    assert stats["errors"] == 0


def test_two_services_agree(serve_db, deployed_registry, label_queries):
    """Run-to-run determinism: two service instances, same answers."""
    schedule = schedule_for(label_queries, 24)

    def run() -> list[bytes]:
        with QueryService(
            serve_db, deployed_registry, workers=3, max_pending=64
        ) as svc:
            futures = [svc.submit(label_queries[i]) for i in schedule]
            return [
                byte_image(f.result(timeout=60).rows) for f in futures
            ]

    assert run() == run()
