"""Transport adapters: loopback, socketpair, and TCP against one engine.

The core guarantee: every transport returns byte-identical result rows
for the same request schedule, and every engine-side failure crosses
back as the same typed exception an in-process caller would catch.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import (
    QueueFullError,
    RegistryError,
    RequestTimeoutError,
)
from repro.serve.engine import (
    DeployRequest,
    QueryRequest,
    RetireRequest,
    ServeEngine,
)
from repro.serve.transport import (
    LoopbackTransport,
    TCPServer,
    connect_tcp,
    serve_socketpair,
)
from repro.sql.miningext import PredictionJoinExecutor

from tests.serve.test_stress import byte_image, schedule_for


@pytest.fixture()
def engine(serve_db, deployed_registry):
    with ServeEngine(
        serve_db, deployed_registry, workers=2, max_pending=64
    ) as eng:
        yield eng


@pytest.fixture()
def expected_images(serve_db, deployed_registry, label_queries):
    schedule = schedule_for(label_queries, 18)
    executor = PredictionJoinExecutor(serve_db, deployed_registry.catalog)
    images = [
        byte_image(executor.execute(label_queries[i]).rows)
        for i in schedule
    ]
    return schedule, images


def run_schedule(transport, label_queries, schedule):
    futures = [
        transport.submit(QueryRequest(query=label_queries[i]))
        for i in schedule
    ]
    return [byte_image(f.result(timeout=60).rows) for f in futures]


class TestLoopback:
    def test_byte_identical_and_keeps_report(
        self, engine, label_queries, expected_images
    ):
        schedule, expected = expected_images
        loopback = LoopbackTransport(engine)
        assert run_schedule(loopback, label_queries, schedule) == expected
        result = loopback.request(QueryRequest(query=label_queries[0]))
        assert result.report is not None  # loopback keeps the report


class TestSocketpair:
    def test_byte_identical_over_the_wire(
        self, engine, label_queries, expected_images
    ):
        schedule, expected = expected_images
        client, server = serve_socketpair(engine)
        try:
            images = run_schedule(client, label_queries, schedule)
        finally:
            client.close()
            server.close()
        assert images == expected

    def test_report_does_not_cross_the_wire(self, engine, label_queries):
        client, server = serve_socketpair(engine)
        try:
            result = client.request(QueryRequest(query=label_queries[0]))
        finally:
            client.close()
            server.close()
        assert result.report is None
        assert result.rows_returned > 0

    def test_typed_errors_cross_the_wire(self, engine):
        client, server = serve_socketpair(engine)
        try:
            with pytest.raises(RegistryError):
                client.control(RetireRequest(name="no_such_model"))
        finally:
            client.close()
            server.close()

    def test_wire_control_deploy_and_retire(
        self, serve_db, customer_tree
    ):
        from repro.serve.registry import ModelRegistry

        with ServeEngine(
            serve_db, ModelRegistry(max_nodes=150), workers=1
        ) as eng:
            client, server = serve_socketpair(eng)
            try:
                deployed = client.control(
                    DeployRequest(model=customer_tree.to_dict())
                )
                assert deployed.name == "risk_tree"
                assert deployed.version == 1
                retired = client.control(RetireRequest(name="risk_tree"))
                assert retired.version == 1
            finally:
                client.close()
                server.close()

    def test_client_timeout_is_typed(self, engine, label_queries):
        client, server = serve_socketpair(engine)
        try:
            with pytest.raises(RequestTimeoutError):
                client.request(
                    QueryRequest(
                        query=label_queries[0], timeout=0.000_001
                    )
                )
        finally:
            client.close()
            server.close()

    def test_queue_full_is_synchronous_and_typed(
        self, serve_db, deployed_registry, label_queries
    ):
        """Shed requests come back as QueueFullError frames.

        One worker parked on a slow request, a queue of one: the third
        submission must shed.  Collapsing is off so the structurally
        identical queries cannot piggyback instead of shedding.
        """
        with ServeEngine(
            serve_db,
            deployed_registry,
            workers=1,
            max_pending=1,
            collapsing=False,
        ) as eng:
            client, server = serve_socketpair(eng)
            try:
                futures = []
                shed = 0
                for _ in range(12):
                    future = client.submit(
                        QueryRequest(query=label_queries[0])
                    )
                    futures.append(future)
                for future in futures:
                    try:
                        future.result(timeout=60)
                    except QueueFullError:
                        shed += 1
                assert shed > 0
            finally:
                client.close()
                server.close()


class TestTCP:
    def test_byte_identical_over_tcp(
        self, engine, label_queries, expected_images
    ):
        schedule, expected = expected_images
        with TCPServer(engine) as server:
            host, port = server.address
            client = connect_tcp(host, port)
            try:
                images = run_schedule(client, label_queries, schedule)
            finally:
                client.close()
        assert images == expected

    def test_many_idle_connections_are_cheap(self, engine, label_queries):
        """Ten parked clients; one of them still gets served correctly."""
        with TCPServer(engine) as server:
            host, port = server.address
            clients = [connect_tcp(host, port) for _ in range(10)]
            try:
                result = clients[-1].request(
                    QueryRequest(query=label_queries[0])
                )
                assert result.rows_returned >= 0
            finally:
                for client in clients:
                    client.close()

    def test_corrupt_stream_drops_connection_not_server(
        self, engine, label_queries
    ):
        """A client speaking garbage loses its connection; others live."""
        import socket as socketlib

        with TCPServer(engine) as server:
            host, port = server.address
            raw = socketlib.create_connection((host, port))
            raw.sendall(b"GET / HTTP/1.1\r\n\r\n")
            # The server closes the corrupt connection...
            raw.settimeout(5)
            assert raw.recv(1) == b""
            raw.close()
            # ...and keeps serving well-formed clients.
            client = connect_tcp(host, port)
            try:
                result = client.request(
                    QueryRequest(query=label_queries[0])
                )
                assert result.rows_returned >= 0
            finally:
                client.close()


def test_all_transports_agree(
    engine, label_queries, expected_images
):
    """One engine, three transports, identical bytes."""
    schedule, expected = expected_images
    images = {}
    images["inproc"] = run_schedule(
        LoopbackTransport(engine), label_queries, schedule
    )
    client, server = serve_socketpair(engine)
    try:
        images["socketpair"] = run_schedule(
            client, label_queries, schedule
        )
    finally:
        client.close()
        server.close()
    with TCPServer(engine) as tcp_server:
        host, port = tcp_server.address
        tcp_client = connect_tcp(host, port)
        try:
            images["tcp"] = run_schedule(
                tcp_client, label_queries, schedule
            )
        finally:
            tcp_client.close()
    assert images["inproc"] == expected
    assert images["socketpair"] == expected
    assert images["tcp"] == expected


def test_frame_stream_is_canonical_json(engine, label_queries):
    """Responses are canonical JSON: sorted keys, no NaN literals."""
    from repro.serve.protocol import encode_response

    loopback = LoopbackTransport(engine)
    result = loopback.request(QueryRequest(query=label_queries[0]))
    payload = encode_response(result)
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    assert json.loads(canonical) == payload
