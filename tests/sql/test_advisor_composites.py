"""Additional advisor tests: composite candidates and budget interplay."""

import pytest

from repro.core.predicates import conjunction, disjunction, equals
from repro.sql.advisor import candidate_indexes, recommend_indexes
from repro.sql.stats import build_table_stats

ROWS = [
    {
        "a": i % 50,
        "b": i % 40,
        "c": i % 3,
    }
    for i in range(2000)
]


@pytest.fixture(scope="module")
def stats():
    return build_table_stats("t", ROWS, row_count=len(ROWS))


class TestCompositeCandidates:
    def test_pair_candidate_from_conjunct(self, stats):
        workload = [conjunction([equals("a", 3), equals("b", 7)])]
        candidates = candidate_indexes(workload, stats)
        assert any(c.columns == ("a", "b") for c in candidates)

    def test_no_pair_across_disjuncts(self, stats):
        workload = [disjunction([equals("a", 3), equals("b", 7)])]
        candidates = candidate_indexes(workload, stats)
        assert not any(len(c.columns) == 2 for c in candidates)

    def test_benefit_ranks_selective_first(self, stats):
        workload = [equals("a", 3), equals("c", 1)]
        candidates = candidate_indexes(workload, stats)
        by_columns = {c.columns: c for c in candidates}
        # a has 50 distinct values (2% selectivity) -> much more benefit
        # than c with 3 values (33%).
        assert ("a",) in by_columns
        if ("c",) in by_columns:
            assert (
                by_columns[("a",)].benefit_rows
                > by_columns[("c",)].benefit_rows
            )

    def test_leading_column_dedup_in_recommendation(self, stats):
        workload = [
            equals("a", 3),
            conjunction([equals("a", 3), equals("b", 7)]),
        ]
        recommendation = recommend_indexes(workload, stats, budget=8)
        leading = [c.columns[0] for c in recommendation.chosen]
        assert len(leading) == len(set(leading))

    def test_considered_count_reported(self, stats):
        workload = [equals("a", 1)]
        recommendation = recommend_indexes(workload, stats)
        assert recommendation.considered >= len(recommendation.chosen)
