"""The estimator feedback loop: store, overlay, plan recalibration."""

import threading

import pytest

from repro.core.catalog import ModelCatalog
from repro.core.optimizer import MiningQuery
from repro.core.predicates import And, Comparison, Op
from repro.core.rewrite import PredictionEquals
from repro.mining.decision_tree import DecisionTreeLearner
from repro.sql.calibration import (
    CalibratedEstimator,
    CalibrationStore,
)
from repro.sql.database import Database, load_table
from repro.sql.miningext import PredictionJoinExecutor
from repro.sql.plancache import PlanCache
from repro.sql.stats import build_table_stats, estimate_selectivity

from tests.conftest import CUSTOMER_FEATURES, make_customer_rows

PRED = Comparison("age", Op.LT, 40)
OTHER = Comparison("income", Op.GT, 50_000.0)


@pytest.fixture()
def stats():
    rows = [
        {"age": age, "income": 1000.0 * age} for age in range(20, 70)
    ]
    return build_table_stats("t", rows)


class TestCalibrationStore:
    def test_observe_then_lookup(self, stats):
        store = CalibrationStore()
        store.observe("t", PRED, 0.5, 0.25, stats.version)
        entry = store.lookup("t", PRED, stats_version=stats.version)
        assert entry is not None
        assert entry.ewma == 0.25
        assert entry.observations == 1
        assert entry.abs_error == 0.25

    def test_lookup_unknown_predicate(self, stats):
        store = CalibrationStore()
        assert store.lookup("t", PRED) is None

    def test_ewma_converges(self, stats):
        store = CalibrationStore(alpha=0.5)
        store.observe("t", PRED, 0.5, 0.0, stats.version)
        store.observe("t", PRED, 0.5, 1.0, stats.version)
        entry = store.lookup("t", PRED)
        assert entry.ewma == 0.5  # 0.5*1.0 + 0.5*0.0
        assert entry.observations == 2

    def test_stats_version_mismatch_restarts_ewma(self, stats):
        store = CalibrationStore()
        store.observe("t", PRED, 0.5, 0.2, stats_version=1)
        store.observe("t", PRED, 0.5, 0.8, stats_version=2)
        entry = store.lookup("t", PRED)
        # Not an EWMA blend: the old snapshot's observations are gone.
        assert entry.ewma == 0.8
        assert entry.observations == 1
        assert store.stats.resets == 1

    def test_lookup_guards_stats_version(self, stats):
        store = CalibrationStore()
        store.observe("t", PRED, 0.5, 0.2, stats_version=1)
        assert store.lookup("t", PRED, stats_version=2) is None
        assert store.lookup("t", PRED, stats_version=1) is not None

    def test_min_observations_gate(self, stats):
        store = CalibrationStore(min_observations=2)
        store.observe("t", PRED, 0.5, 0.2, stats.version)
        assert store.lookup("t", PRED) is None
        store.observe("t", PRED, 0.5, 0.2, stats.version)
        assert store.lookup("t", PRED) is not None

    def test_lru_eviction(self, stats):
        store = CalibrationStore(capacity=2)
        store.observe("t", PRED, 0.5, 0.2, stats.version)
        store.observe("t", OTHER, 0.5, 0.3, stats.version)
        store.observe("t", And((PRED, OTHER)), 0.5, 0.1, stats.version)
        assert len(store) == 2
        assert store.stats.evictions == 1
        assert store.lookup("t", PRED) is None  # the oldest went

    def test_generation_bumps_on_shift_only(self, stats):
        store = CalibrationStore()
        before = store.generation
        store.observe("t", PRED, 0.5, 0.25, stats.version)
        after_first = store.generation
        assert after_first > before
        # Re-observing the same fraction moves the EWMA by zero: no bump.
        store.observe("t", PRED, 0.5, 0.25, stats.version)
        assert store.generation == after_first
        store.observe("t", PRED, 0.5, 0.75, stats.version)
        assert store.generation > after_first

    def test_concurrent_observe(self, stats):
        store = CalibrationStore()
        errors: list[Exception] = []

        def worker(fraction: float) -> None:
            try:
                for _ in range(200):
                    store.observe("t", PRED, 0.5, fraction, stats.version)
                    store.lookup("t", PRED)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i / 8,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.stats.observations == 1600
        entry = store.lookup("t", PRED)
        assert 0.0 <= entry.ewma <= 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"capacity": 0},
            {"min_observations": 0},
        ],
    )
    def test_rejects_bad_construction(self, kwargs):
        with pytest.raises(ValueError):
            CalibrationStore(**kwargs)


class TestCalibratedEstimator:
    def test_no_store_is_static(self, stats):
        estimator = CalibratedEstimator(stats, None)
        assert estimator(PRED) == estimate_selectivity(stats, PRED)
        assert estimator.stats_version == (stats.version, 0)

    def test_zero_observations_is_static(self, stats):
        estimator = CalibratedEstimator(stats, CalibrationStore())
        assert estimator(PRED) == estimate_selectivity(stats, PRED)

    def test_overlay_applies_after_observation(self, stats):
        store = CalibrationStore()
        store.observe("t", PRED, 0.5, 0.125, stats.version)
        estimator = CalibratedEstimator(stats, store)
        assert estimator(PRED) == 0.125
        # The static estimate stays reachable for before/after reporting.
        assert estimator.static(PRED) == estimate_selectivity(stats, PRED)
        # An unobserved predicate still answers statically.
        assert estimator(OTHER) == estimate_selectivity(stats, OTHER)

    def test_stale_observation_not_applied(self, stats):
        store = CalibrationStore()
        store.observe("t", PRED, 0.5, 0.125, stats.version + 1)
        estimator = CalibratedEstimator(stats, store)
        assert estimator(PRED) == estimate_selectivity(stats, PRED)

    def test_memo_token_tracks_generation(self, stats):
        """The plan-once operand-ordering memo keys on ``stats_version``:
        a calibration shift must produce a fresh token."""
        store = CalibrationStore()
        first = CalibratedEstimator(stats, store).stats_version
        store.observe("t", PRED, 0.5, 0.25, stats.version)
        second = CalibratedEstimator(stats, store).stats_version
        assert first != second
        # No shift, no re-plan: the token is stable.
        assert CalibratedEstimator(stats, store).stats_version == second


@pytest.fixture()
def catalog():
    rows = make_customer_rows(150, seed=21)
    catalog = ModelCatalog()
    catalog.register(
        DecisionTreeLearner(
            CUSTOMER_FEATURES, "risk", max_depth=4, name="m"
        ).fit(rows)
    )
    return catalog


QUERY = MiningQuery(
    "customers", mining_predicates=(PredictionEquals("m", "high"),)
)


class TestPlanCacheRecalibration:
    def test_divergence_drops_cached_plan(self, catalog, stats):
        cache = PlanCache(recalibration_threshold=0.05)
        plan = cache.get_or_optimize(QUERY, catalog)
        cache.record_estimate(QUERY, catalog, 0.5)

        class Far:
            stats_version = (stats.version, 1)

            def __call__(self, predicate):
                return 0.9

        refreshed = cache.get_or_optimize(QUERY, catalog, calibrated=Far())
        assert cache.stats.recalibrations == 1
        assert cache.stats.misses == 2
        # The re-optimized plan is equivalent (same inputs), just rebuilt.
        assert refreshed.pushable_predicate == plan.pushable_predicate

    def test_close_estimate_keeps_plan(self, catalog):
        cache = PlanCache(recalibration_threshold=0.05)
        plan = cache.get_or_optimize(QUERY, catalog)
        cache.record_estimate(QUERY, catalog, 0.5)

        class Near:
            def __call__(self, predicate):
                return 0.52

        again = cache.get_or_optimize(QUERY, catalog, calibrated=Near())
        assert again is plan
        assert cache.stats.recalibrations == 0
        assert cache.stats.hits == 1

    def test_no_recorded_estimate_never_diverges(self, catalog):
        cache = PlanCache()
        plan = cache.get_or_optimize(QUERY, catalog)

        class Any:
            def __call__(self, predicate):
                return 0.0

        assert cache.get_or_optimize(QUERY, catalog, calibrated=Any()) is plan
        assert cache.stats.recalibrations == 0

    def test_estimator_exception_keeps_plan(self, catalog):
        cache = PlanCache()
        plan = cache.get_or_optimize(QUERY, catalog)
        cache.record_estimate(QUERY, catalog, 0.5)

        class Broken:
            def __call__(self, predicate):
                raise RuntimeError("no stats for you")

        assert (
            cache.get_or_optimize(QUERY, catalog, calibrated=Broken())
            is plan
        )
        assert cache.stats.recalibrations == 0

    def test_record_estimate_after_eviction_is_noop(self, catalog):
        cache = PlanCache(capacity=1)
        cache.get_or_optimize(QUERY, catalog)
        other = MiningQuery(
            "customers",
            relational_predicate=Comparison("age", Op.LT, 30),
            mining_predicates=(PredictionEquals("m", "high"),),
        )
        cache.get_or_optimize(other, catalog)  # evicts QUERY's entry
        cache.record_estimate(QUERY, catalog, 0.5)  # must not resurrect
        assert len(cache) == 1

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="recalibration_threshold"):
            PlanCache(recalibration_threshold=0.0)


class TestExecutorFeedbackLoop:
    @pytest.fixture()
    def setup(self):
        rows = make_customer_rows(200, seed=5)
        feature_rows = [
            {c: row[c] for c in CUSTOMER_FEATURES} for row in rows
        ]
        db = Database()
        load_table(db, "customers", feature_rows)
        catalog = ModelCatalog()
        catalog.register(
            DecisionTreeLearner(
                CUSTOMER_FEATURES, "risk", max_depth=4, name="m"
            ).fit(rows)
        )
        yield db, catalog
        db.close()

    def test_second_run_estimates_from_observation(self, setup):
        db, catalog = setup
        store = CalibrationStore()
        executor = PredictionJoinExecutor(
            db,
            catalog,
            selectivity_gate=None,
            plan_cache=PlanCache(),
            calibration=store,
        )
        query = MiningQuery(
            "customers", mining_predicates=(PredictionEquals("m", "high"),)
        )
        first = executor.execute_optimized(query)
        assert first.actual_selectivity is not None
        assert store.stats.observations == 1
        second = executor.execute_optimized(query)
        # The pushed predicate was observed once; the second pass's
        # estimate is that observation, so its error is exactly zero.
        assert second.estimated_selectivity == pytest.approx(
            second.actual_selectivity
        )
        assert second.rows == first.rows

    def test_calibration_never_changes_rows(self, setup):
        db, catalog = setup
        query = MiningQuery(
            "customers", mining_predicates=(PredictionEquals("m", "high"),)
        )
        open_loop = PredictionJoinExecutor(db, catalog)
        closed_loop = PredictionJoinExecutor(
            db,
            catalog,
            plan_cache=PlanCache(),
            calibration=CalibrationStore(),
        )
        expected = sorted(
            map(repr, open_loop.execute_optimized(query).rows)
        )
        for _ in range(3):
            got = sorted(
                map(repr, closed_loop.execute_optimized(query).rows)
            )
            assert got == expected
