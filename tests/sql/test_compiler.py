"""Unit tests for the predicate-to-SQL compiler."""

import pytest

from repro.core.predicates import (
    FALSE,
    TRUE,
    Comparison,
    InSet,
    Interval,
    Not,
    Op,
    conjunction,
    disjunction,
    equals,
)
from repro.exceptions import PredicateError
from repro.sql.compiler import (
    compile_predicate,
    count_statement,
    render_literal,
    select_statement,
)


class TestLiterals:
    def test_int(self):
        assert render_literal(42) == "42"

    def test_float(self):
        assert render_literal(1.5) == "1.5"

    def test_string_quoting(self):
        assert render_literal("paris") == "'paris'"

    def test_string_escaping(self):
        assert render_literal("o'brien") == "'o''brien'"

    def test_bool_rejected(self):
        with pytest.raises(PredicateError):
            render_literal(True)


class TestCompile:
    def test_constants(self):
        assert compile_predicate(TRUE) == "1=1"
        assert compile_predicate(FALSE) == "1=0"

    def test_comparison(self):
        assert compile_predicate(equals("age", 30)) == "[age] = 30"
        assert (
            compile_predicate(Comparison("age", Op.GE, 18)) == "[age] >= 18"
        )

    def test_in_set(self):
        sql = compile_predicate(InSet("city", ("paris", "rome")))
        assert sql == "[city] IN ('paris', 'rome')"

    def test_not_in_set(self):
        sql = compile_predicate(Not(InSet("city", ("paris",))))
        assert sql == "([city] NOT IN ('paris') OR [city] IS NULL)"

    def test_not_equal_keeps_null_rows(self):
        sql = compile_predicate(Comparison("city", Op.NE, "paris"))
        assert sql == "([city] != 'paris' OR [city] IS NULL)"

    def test_closed_interval_becomes_between(self):
        sql = compile_predicate(Interval("age", 18, 65))
        assert sql == '[age] BETWEEN 18 AND 65'

    def test_half_open_interval(self):
        sql = compile_predicate(Interval("age", 18, 65, high_closed=False))
        assert sql == '[age] >= 18 AND [age] < 65'

    def test_one_sided_interval(self):
        assert compile_predicate(Interval("age", low=18)) == '[age] >= 18'
        assert (
            compile_predicate(Interval("age", high=65, high_closed=False))
            == '[age] < 65'
        )

    def test_and_or_nesting(self):
        pred = disjunction(
            [
                conjunction([equals("a", 1), equals("b", 2)]),
                equals("c", 3),
            ]
        )
        sql = compile_predicate(pred)
        assert sql == '([a] = 1 AND [b] = 2) OR [c] = 3'

    def test_generic_not(self):
        pred = Not(conjunction([equals("a", 1), equals("b", 2)]))
        sql = compile_predicate(pred)
        # IS NOT TRUE (not bare NOT): unknown inner results must negate
        # to true, matching the two-valued Predicate.evaluate.
        assert sql.endswith(") IS NOT TRUE")

    def test_injection_resistant_identifiers(self):
        with pytest.raises(Exception):
            compile_predicate(equals('a"; DROP TABLE t; --', 1))


class TestStatements:
    def test_select_with_true_has_no_where(self):
        assert select_statement("t", TRUE) == 'SELECT * FROM [t]'

    def test_select_with_predicate(self):
        sql = select_statement("t", equals("a", 1))
        assert sql == 'SELECT * FROM [t] WHERE [a] = 1'

    def test_count_statement(self):
        sql = count_statement("t", equals("a", 1))
        assert sql == 'SELECT COUNT(*) FROM [t] WHERE [a] = 1'


class TestRoundTripAgainstSQLite:
    """The compiled SQL must agree with Predicate.evaluate row by row."""

    def test_agreement(self):
        import sqlite3

        rows = [
            (1, 10.5, "paris"),
            (2, 20.0, "rome"),
            (3, 5.25, "o'brien"),
            (4, 30.0, "berlin"),
        ]
        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE t (a INTEGER, b REAL, c TEXT)")
        connection.executemany("INSERT INTO t VALUES (?, ?, ?)", rows)
        predicates = [
            equals("a", 2),
            Comparison("b", Op.GT, 10.0),
            InSet("c", ("paris", "o'brien")),
            Not(InSet("c", ("rome",))),
            Interval("b", 5.25, 20.0, high_closed=False),
            conjunction(
                [Comparison("a", Op.GE, 2), InSet("c", ("rome", "berlin"))]
            ),
            disjunction([equals("c", "paris"), Comparison("a", Op.GE, 4)]),
        ]
        for pred in predicates:
            sql = f"SELECT a FROM t WHERE {compile_predicate(pred)}"
            via_sql = {r[0] for r in connection.execute(sql)}
            via_eval = {
                a
                for a, b, c in rows
                if pred.evaluate({"a": a, "b": b, "c": c})
            }
            assert via_sql == via_eval, pred
