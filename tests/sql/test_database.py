"""Unit tests for the SQLite wrapper."""

import pytest

from repro.core.predicates import TRUE, Comparison, Op, equals
from repro.exceptions import DatabaseError
from repro.sql.database import Database, load_table
from repro.sql.schema import Column, ColumnType, TableSchema

ROWS = [
    {"id": i, "score": float(i) * 1.5, "city": ["paris", "rome"][i % 2]}
    for i in range(100)
]


@pytest.fixture()
def db():
    with Database() as database:
        load_table(database, "t", ROWS)
        yield database


class TestDDL:
    def test_create_and_load(self, db):
        assert db.row_count("t") == 100
        assert db.table_names() == ["t"]

    def test_schema_inferred_types(self, db):
        schema = db.schema("t")
        assert schema.column("id").type is ColumnType.INTEGER
        assert schema.column("score").type is ColumnType.REAL
        assert schema.column("city").type is ColumnType.TEXT

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.create_table(TableSchema("t", (Column("x", ColumnType.INTEGER),)))

    def test_unknown_table_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.schema("missing")


class TestIndexes:
    def test_create_and_drop(self, db):
        name = db.create_index("t", ["city"])
        assert name in db.index_names("t")
        db.drop_index(name)
        assert name not in db.index_names("t")

    def test_composite_index(self, db):
        name = db.create_index("t", ["city", "score"])
        assert "city" in name and "score" in name

    def test_duplicate_index_rejected(self, db):
        db.create_index("t", ["city"])
        with pytest.raises(DatabaseError):
            db.create_index("t", ["city"])

    def test_unknown_column_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.create_index("t", ["missing"])

    def test_drop_all(self, db):
        db.create_index("t", ["city"])
        db.create_index("t", ["score"])
        db.drop_all_indexes("t")
        assert db.index_names("t") == []


class TestQueries:
    def test_select_rows(self, db):
        rows = db.select("t", equals("city", "paris"))
        assert len(rows) == 50
        assert all(r["city"] == "paris" for r in rows)

    def test_count_and_selectivity(self, db):
        assert db.count("t", Comparison("id", Op.LT, 10)) == 10
        assert db.selectivity("t", Comparison("id", Op.LT, 10)) == pytest.approx(0.1)

    def test_timed_fetch(self, db):
        count, seconds = db.timed_fetch('SELECT * FROM "t"')
        assert count == 100
        assert seconds >= 0

    def test_explain_returns_rows(self, db):
        plan = db.explain('SELECT * FROM "t" WHERE "id" = 5')
        assert plan
        assert any("t" in text for *_ids, text in plan)

    def test_bad_sql_raises_with_statement(self, db):
        with pytest.raises(DatabaseError) as info:
            db.execute("SELECT nonsense FROM nowhere")
        assert "nowhere" in str(info.value)

    def test_sample_rows_small_table_returns_all(self, db):
        assert len(db.sample_rows("t", 1000)) == 100

    def test_sample_rows_subsamples(self, db):
        sample = db.sample_rows("t", 10)
        assert 0 < len(sample) <= 15

    def test_sample_rows_deterministic(self, db):
        assert db.sample_rows("t", 10) == db.sample_rows("t", 10)

    def test_sample_rows_exact_size_when_subsampling(self, db):
        assert len(db.sample_rows("t", 10)) == 10

    def test_empty_table_selectivity_raises(self):
        with Database() as database:
            database.create_table(
                TableSchema("e", (Column("x", ColumnType.INTEGER),))
            )
            with pytest.raises(DatabaseError):
                database.selectivity("e", TRUE)

    def test_iter_rows(self, db):
        rows = list(db.iter_rows('SELECT * FROM "t" LIMIT 3'))
        assert len(rows) == 3
        assert set(rows[0]) == {"id", "score", "city"}

    def test_insert_batching(self):
        with Database() as database:
            database.create_table(
                TableSchema("big", (Column("x", ColumnType.INTEGER),))
            )
            inserted = database.insert_rows(
                "big", ({"x": i} for i in range(12_345))
            )
            assert inserted == 12_345
            assert database.row_count("big") == 12_345


class TestSampleRowsHashing:
    """Regression tests for the rowid-hash sampler.

    The old implementation stride-sampled with ``LIMIT``: on a
    repeated-doubling table whose period aligns with the stride it
    resampled the same few seed rows, and the ``LIMIT`` truncated the
    sample to a table prefix.
    """

    @staticmethod
    def _int_table(database: Database, name: str, values: list[int]) -> None:
        database.create_table(
            TableSchema(name, (Column("i", ColumnType.INTEGER),))
        )
        database.insert_rows(name, ({"i": v} for v in values))

    def test_identical_across_insert_batchings(self):
        values = list(range(5000))
        with Database() as one_shot, Database() as chunked:
            self._int_table(one_shot, "s", values)
            chunked.create_table(
                TableSchema("s", (Column("i", ColumnType.INTEGER),))
            )
            for start in range(0, len(values), 7):
                chunked.insert_rows(
                    "s", ({"i": v} for v in values[start : start + 7])
                )
            assert one_shot.sample_rows("s", 200) == chunked.sample_rows(
                "s", 200
            )

    def test_covers_full_rowid_range(self):
        """No prefix truncation: the sample spans the whole table."""
        with Database() as database:
            self._int_table(database, "s", list(range(5000)))
            sampled = [r["i"] for r in database.sample_rows("s", 200)]
            assert len(sampled) == 200
            assert min(sampled) < 500
            assert max(sampled) > 4500
            upper_half = sum(1 for v in sampled if v >= 2500)
            assert 50 <= upper_half <= 150

    def test_no_aliasing_on_repeated_doubling(self):
        """A doubled table must not resample the same seed rows.

        8000 rows = 500 originals repeated 16 times.  The old stride
        (8000 // 200 = 40) shares a factor with the period 500, so it
        revisited only 25 distinct originals; a hash sample draws from
        (nearly) the full original population."""
        originals = 500
        values = [i % originals for i in range(8000)]
        with Database() as database:
            self._int_table(database, "d", values)
            sampled = [r["i"] for r in database.sample_rows("d", 200)]
            assert len(sampled) == 200
            assert len(set(sampled)) > 100

    def test_seed_changes_the_sample(self):
        with Database() as database:
            self._int_table(database, "s", list(range(5000)))
            base = database.sample_rows("s", 100, seed=0)
            other = database.sample_rows("s", 100, seed=12345)
            assert base != other
