"""Unit tests for the SQLite wrapper."""

import pytest

from repro.core.predicates import TRUE, Comparison, Op, equals
from repro.exceptions import DatabaseError
from repro.sql.database import Database, load_table
from repro.sql.schema import Column, ColumnType, TableSchema

ROWS = [
    {"id": i, "score": float(i) * 1.5, "city": ["paris", "rome"][i % 2]}
    for i in range(100)
]


@pytest.fixture()
def db():
    with Database() as database:
        load_table(database, "t", ROWS)
        yield database


class TestDDL:
    def test_create_and_load(self, db):
        assert db.row_count("t") == 100
        assert db.table_names() == ["t"]

    def test_schema_inferred_types(self, db):
        schema = db.schema("t")
        assert schema.column("id").type is ColumnType.INTEGER
        assert schema.column("score").type is ColumnType.REAL
        assert schema.column("city").type is ColumnType.TEXT

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.create_table(TableSchema("t", (Column("x", ColumnType.INTEGER),)))

    def test_unknown_table_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.schema("missing")


class TestIndexes:
    def test_create_and_drop(self, db):
        name = db.create_index("t", ["city"])
        assert name in db.index_names("t")
        db.drop_index(name)
        assert name not in db.index_names("t")

    def test_composite_index(self, db):
        name = db.create_index("t", ["city", "score"])
        assert "city" in name and "score" in name

    def test_duplicate_index_rejected(self, db):
        db.create_index("t", ["city"])
        with pytest.raises(DatabaseError):
            db.create_index("t", ["city"])

    def test_unknown_column_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.create_index("t", ["missing"])

    def test_drop_all(self, db):
        db.create_index("t", ["city"])
        db.create_index("t", ["score"])
        db.drop_all_indexes("t")
        assert db.index_names("t") == []


class TestQueries:
    def test_select_rows(self, db):
        rows = db.select("t", equals("city", "paris"))
        assert len(rows) == 50
        assert all(r["city"] == "paris" for r in rows)

    def test_count_and_selectivity(self, db):
        assert db.count("t", Comparison("id", Op.LT, 10)) == 10
        assert db.selectivity("t", Comparison("id", Op.LT, 10)) == pytest.approx(0.1)

    def test_timed_fetch(self, db):
        count, seconds = db.timed_fetch('SELECT * FROM "t"')
        assert count == 100
        assert seconds >= 0

    def test_explain_returns_rows(self, db):
        plan = db.explain('SELECT * FROM "t" WHERE "id" = 5')
        assert plan
        assert any("t" in text for *_ids, text in plan)

    def test_bad_sql_raises_with_statement(self, db):
        with pytest.raises(DatabaseError) as info:
            db.execute("SELECT nonsense FROM nowhere")
        assert "nowhere" in str(info.value)

    def test_sample_rows_small_table_returns_all(self, db):
        assert len(db.sample_rows("t", 1000)) == 100

    def test_sample_rows_subsamples(self, db):
        sample = db.sample_rows("t", 10)
        assert 0 < len(sample) <= 15

    def test_sample_rows_deterministic(self, db):
        assert db.sample_rows("t", 10) == db.sample_rows("t", 10)

    def test_empty_table_selectivity_raises(self):
        with Database() as database:
            database.create_table(
                TableSchema("e", (Column("x", ColumnType.INTEGER),))
            )
            with pytest.raises(DatabaseError):
                database.selectivity("e", TRUE)

    def test_iter_rows(self, db):
        rows = list(db.iter_rows('SELECT * FROM "t" LIMIT 3'))
        assert len(rows) == 3
        assert set(rows[0]) == {"id", "score", "city"}

    def test_insert_batching(self):
        with Database() as database:
            database.create_table(
                TableSchema("big", (Column("x", ColumnType.INTEGER),))
            )
            inserted = database.insert_rows(
                "big", ({"x": i} for i in range(12_345))
            )
            assert inserted == 12_345
            assert database.row_count("big") == 12_345
