"""Tests for the DMX-style prediction-join parser."""

import pytest

from repro.core.catalog import ModelCatalog
from repro.core.predicates import Comparison, InSet, Interval, Op
from repro.core.rewrite import (
    PredictionEquals,
    PredictionIn,
    PredictionJoinColumn,
    PredictionJoinPrediction,
)
from repro.exceptions import RewriteError
from repro.mining.decision_tree import DecisionTreeLearner
from repro.sql.dmx import parse_dmx

from tests.conftest import CUSTOMER_FEATURES, make_customer_rows


@pytest.fixture(scope="module")
def catalog():
    rows = make_customer_rows(200, seed=3)
    catalog = ModelCatalog()
    catalog.register(
        DecisionTreeLearner(
            CUSTOMER_FEATURES, "risk", max_depth=4, name="Risk_Class"
        ).fit(rows)
    )
    catalog.register(
        DecisionTreeLearner(
            CUSTOMER_FEATURES, "risk", max_depth=2, name="Other_Model"
        ).fit(rows)
    )
    return catalog


class TestBasicParsing:
    def test_paper_example_shape(self, catalog):
        query = parse_dmx(
            "SELECT * FROM customers "
            "PREDICTION JOIN [Risk_Class] M "
            "WHERE M.Risk = 'low'",
            catalog,
        )
        assert query.table == "customers"
        assert query.mining_predicates == (
            PredictionEquals("Risk_Class", "low"),
        )

    def test_relational_and_mining_mix(self, catalog):
        query = parse_dmx(
            "SELECT * FROM customers D "
            "PREDICTION JOIN Risk_Class M "
            "WHERE M.Risk = 'low' AND D.age > 30 AND gender = 'female'",
            catalog,
        )
        atoms = (
            query.relational_predicate.operands
            if hasattr(query.relational_predicate, "operands")
            else (query.relational_predicate,)
        )
        assert Comparison("age", Op.GT, 30) in atoms
        assert Comparison("gender", Op.EQ, "female") in atoms

    def test_in_predicate(self, catalog):
        query = parse_dmx(
            "SELECT * FROM t PREDICTION JOIN Risk_Class M "
            "WHERE M.Risk IN ('low', 'high')",
            catalog,
        )
        assert query.mining_predicates == (
            PredictionIn("Risk_Class", ("high", "low")),
        )

    def test_between_on_data_column(self, catalog):
        query = parse_dmx(
            "SELECT * FROM t WHERE age BETWEEN 20 AND 30", catalog
        )
        assert query.relational_predicate == Interval("age", 20, 30)

    def test_data_in_list(self, catalog):
        query = parse_dmx(
            "SELECT * FROM t WHERE city IN ('paris', 'rome')", catalog
        )
        assert isinstance(query.relational_predicate, InSet)

    def test_string_escaping(self, catalog):
        query = parse_dmx(
            "SELECT * FROM t PREDICTION JOIN Risk_Class M "
            "WHERE M.Risk = 'o''brien'",
            catalog,
        )
        assert query.mining_predicates[0].label == "o'brien"


class TestJoins:
    def test_model_to_model(self, catalog):
        query = parse_dmx(
            "SELECT * FROM t "
            "PREDICTION JOIN Risk_Class M1, Other_Model M2 "
            "WHERE M1.Risk = M2.Risk",
            catalog,
        )
        assert query.mining_predicates == (
            PredictionJoinPrediction("Risk_Class", "Other_Model"),
        )

    def test_model_to_column(self, catalog):
        query = parse_dmx(
            "SELECT * FROM t D PREDICTION JOIN Risk_Class M "
            "WHERE M.Risk = D.risk",
            catalog,
        )
        assert query.mining_predicates == (
            PredictionJoinColumn("Risk_Class", "risk"),
        )

    def test_column_to_model_reversed(self, catalog):
        query = parse_dmx(
            "SELECT * FROM t D PREDICTION JOIN Risk_Class M "
            "WHERE D.risk = M.Risk",
            catalog,
        )
        assert query.mining_predicates == (
            PredictionJoinColumn("Risk_Class", "risk"),
        )


class TestErrors:
    def test_unknown_model(self, catalog):
        with pytest.raises(Exception):
            parse_dmx(
                "SELECT * FROM t PREDICTION JOIN Nope M WHERE M.x = 1",
                catalog,
            )

    def test_unknown_alias(self, catalog):
        with pytest.raises(RewriteError):
            parse_dmx(
                "SELECT * FROM t WHERE Z.col = 1",
                catalog,
            )

    def test_only_select_star(self, catalog):
        with pytest.raises(RewriteError):
            parse_dmx("SELECT id FROM t", catalog)

    def test_inequality_on_prediction_rejected(self, catalog):
        with pytest.raises(RewriteError):
            parse_dmx(
                "SELECT * FROM t PREDICTION JOIN Risk_Class M "
                "WHERE M.Risk > 'low'",
                catalog,
            )

    def test_trailing_garbage(self, catalog):
        with pytest.raises(RewriteError):
            parse_dmx("SELECT * FROM t WHERE a = 1 ORDER", catalog)


class TestExecution:
    def test_parsed_query_runs(self, catalog):
        from repro.sql.database import Database, load_table
        from repro.sql.miningext import PredictionJoinExecutor

        rows = make_customer_rows(200, seed=3)
        db = Database()
        load_table(
            db,
            "customers",
            [{c: r[c] for c in CUSTOMER_FEATURES} for r in rows],
        )
        query = parse_dmx(
            "SELECT * FROM customers PREDICTION JOIN Risk_Class M "
            "WHERE M.Risk = 'high' AND age < 40",
            catalog,
        )
        executor = PredictionJoinExecutor(db, catalog)
        optimized = executor.execute_optimized(query)
        naive = executor.execute_naive(query)
        assert optimized.rows_returned == naive.rows_returned
        db.close()
