"""Failure-injection tests: the substrate must fail loudly and typed."""

import pytest

from repro.core.predicates import equals
from repro.exceptions import DatabaseError, ReproError
from repro.sql.database import Database, load_table
from repro.sql.schema import Column, ColumnType, TableSchema


class TestInsertFailures:
    def test_missing_column_raises_database_error(self):
        with Database() as db:
            db.create_table(
                TableSchema(
                    "t",
                    (
                        Column("a", ColumnType.INTEGER),
                        Column("b", ColumnType.TEXT),
                    ),
                )
            )
            with pytest.raises(DatabaseError) as info:
                db.insert_rows("t", [{"a": 1}])
            assert "b" in str(info.value)

    def test_insert_into_unknown_table(self):
        with Database() as db:
            with pytest.raises(DatabaseError):
                db.insert_rows("missing", [{"a": 1}])


class TestQueryFailures:
    def test_predicate_on_unknown_column_fails_in_sql(self):
        with Database() as db:
            load_table(db, "t", [{"a": 1}])
            with pytest.raises(DatabaseError):
                db.select("t", equals("nope", 1))

    def test_closed_database_raises(self):
        db = Database()
        load_table(db, "t", [{"a": 1}])
        db.close()
        with pytest.raises(ReproError):
            db.select("t", equals("a", 1))

    def test_drop_unknown_index(self):
        with Database() as db:
            with pytest.raises(DatabaseError):
                db.drop_index("missing")


class TestExecutorFailures:
    def test_unknown_model_in_query(self):
        from repro.core.catalog import ModelCatalog
        from repro.core.optimizer import MiningQuery
        from repro.core.rewrite import PredictionEquals
        from repro.exceptions import CatalogError
        from repro.sql.miningext import PredictionJoinExecutor

        with Database() as db:
            load_table(db, "t", [{"a": 1}])
            executor = PredictionJoinExecutor(db, ModelCatalog())
            query = MiningQuery(
                "t", mining_predicates=(PredictionEquals("ghost", "x"),)
            )
            with pytest.raises(CatalogError):
                executor.execute_optimized(query)

    def test_envelope_on_missing_feature_column(self, customer_catalog):
        """A table lacking the model's feature columns fails in SQL with a
        typed error rather than returning wrong results."""
        from repro.core.optimizer import MiningQuery
        from repro.core.rewrite import PredictionEquals
        from repro.sql.miningext import PredictionJoinExecutor

        with Database() as db:
            load_table(db, "t", [{"unrelated": 1}])
            executor = PredictionJoinExecutor(
                db, customer_catalog, selectivity_gate=None
            )
            query = MiningQuery(
                "t",
                mining_predicates=(PredictionEquals("risk_tree", "high"),),
            )
            with pytest.raises(ReproError):
                executor.execute_optimized(query)
