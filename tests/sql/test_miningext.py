"""Integration tests for the PREDICTION JOIN execution layer."""

import pytest

from repro.core.catalog import ModelCatalog
from repro.core.optimizer import MiningQuery
from repro.core.predicates import Comparison, Op
from repro.core.rewrite import (
    PredictionEquals,
    PredictionIn,
    PredictionJoinColumn,
    PredictionJoinPrediction,
)
from repro.sql.database import Database, load_table
from repro.sql.miningext import PredictionJoinExecutor, baseline_full_scan
from repro.sql.planner import AccessPath

from tests.conftest import CUSTOMER_FEATURES


@pytest.fixture(scope="module")
def setup(customer_rows_module, customer_catalog_module):
    db = Database()
    feature_rows = [
        {c: row[c] for c in CUSTOMER_FEATURES} for row in customer_rows_module
    ]
    load_table(db, "customers", feature_rows)
    executor = PredictionJoinExecutor(db, customer_catalog_module)
    yield db, executor, customer_catalog_module, feature_rows
    db.close()


# Module-scoped clones of the session fixtures (pytest scoping rules).
@pytest.fixture(scope="module")
def customer_rows_module():
    from tests.conftest import make_customer_rows

    return make_customer_rows()


@pytest.fixture(scope="module")
def customer_catalog_module(customer_rows_module):
    from repro.mining.decision_tree import DecisionTreeLearner
    from repro.mining.naive_bayes import NaiveBayesLearner

    catalog = ModelCatalog()
    catalog.register(
        DecisionTreeLearner(
            CUSTOMER_FEATURES, "risk", max_depth=6, name="risk_tree"
        ).fit(customer_rows_module)
    )
    catalog.register(
        NaiveBayesLearner(
            CUSTOMER_FEATURES, "risk", bins=5, name="risk_nb"
        ).fit(customer_rows_module)
    )
    return catalog


def reference_rows(query, rows, catalog):
    return [row for row in rows if query.evaluate(row, catalog)]


class TestEquivalence:
    """Optimized and naive executions must return identical rows."""

    @pytest.mark.parametrize("model_name", ["risk_tree", "risk_nb"])
    @pytest.mark.parametrize("label", ["low", "medium", "high"])
    def test_equality_predicate(self, setup, model_name, label):
        db, executor, catalog, rows = setup
        query = MiningQuery(
            "customers",
            mining_predicates=(PredictionEquals(model_name, label),),
        )
        optimized = executor.execute_optimized(query)
        naive = executor.execute_naive(query)

        def key(r):
            return tuple(sorted(r.items()))

        assert sorted(map(key, optimized.rows)) == sorted(
            map(key, naive.rows)
        )
        expected = reference_rows(query, rows, catalog)
        assert len(optimized.rows) == len(expected)

    def test_in_predicate(self, setup):
        db, executor, catalog, rows = setup
        query = MiningQuery(
            "customers",
            mining_predicates=(
                PredictionIn("risk_tree", ("low", "high")),
            ),
        )
        optimized = executor.execute_optimized(query)
        expected = reference_rows(query, rows, catalog)
        assert len(optimized.rows) == len(expected)

    def test_join_between_models(self, setup):
        db, executor, catalog, rows = setup
        query = MiningQuery(
            "customers",
            mining_predicates=(
                PredictionJoinPrediction("risk_tree", "risk_nb"),
            ),
        )
        optimized = executor.execute_optimized(query)
        expected = reference_rows(query, rows, catalog)
        assert len(optimized.rows) == len(expected)

    def test_join_with_relational_predicate(self, setup):
        db, executor, catalog, rows = setup
        query = MiningQuery(
            "customers",
            relational_predicate=Comparison("age", Op.LT, 40),
            mining_predicates=(PredictionEquals("risk_tree", "high"),),
        )
        optimized = executor.execute_optimized(query)
        expected = reference_rows(query, rows, catalog)
        assert len(optimized.rows) == len(expected)
        assert all(r["age"] < 40 for r in optimized.rows)


class TestFewerRowsFetched:
    def test_optimized_fetches_no_more_rows(self, setup):
        db, executor, catalog, rows = setup
        query = MiningQuery(
            "customers",
            mining_predicates=(PredictionEquals("risk_tree", "high"),),
        )
        optimized = executor.execute_optimized(query)
        naive = executor.execute_naive(query)
        assert optimized.rows_fetched <= naive.rows_fetched
        # 'high' risk is a minority class: the tree envelope is exact, so
        # the optimized path should fetch strictly fewer rows.
        assert optimized.rows_fetched < naive.rows_fetched

    def test_unknown_label_constant_false(self, setup):
        db, executor, catalog, rows = setup
        query = MiningQuery(
            "customers",
            mining_predicates=(PredictionEquals("risk_tree", "nope"),),
        )
        report = executor.execute_optimized(query)
        assert report.rows == ()
        assert report.rows_fetched == 0
        assert report.plan.access_path is AccessPath.CONSTANT_SCAN


class TestPredictions:
    def test_prediction_column_added(self, setup):
        db, executor, catalog, rows = setup
        query = MiningQuery(
            "customers",
            mining_predicates=(PredictionEquals("risk_tree", "low"),),
        )
        result = executor.predictions(query)
        assert result
        for row in result:
            assert row["predicted_risk"] == "low"


class TestJoinColumn:
    def test_prediction_vs_column(self, customer_rows_module):
        """Cross-validation query: predicted label equals stored label."""
        from repro.mining.decision_tree import DecisionTreeLearner

        catalog = ModelCatalog()
        catalog.register(
            DecisionTreeLearner(
                CUSTOMER_FEATURES, "risk", max_depth=6, name="cv_tree"
            ).fit(customer_rows_module)
        )
        db = Database()
        load_table(db, "labelled", customer_rows_module)  # includes 'risk'
        executor = PredictionJoinExecutor(db, catalog)
        query = MiningQuery(
            "labelled",
            mining_predicates=(PredictionJoinColumn("cv_tree", "risk"),),
        )
        report = executor.execute_optimized(query)
        expected = [
            row
            for row in customer_rows_module
            if catalog.model("cv_tree").predict(row) == row["risk"]
        ]
        assert len(report.rows) == len(expected)
        db.close()


class TestBaseline:
    def test_full_scan_report(self, setup):
        db, executor, catalog, rows = setup
        report = baseline_full_scan(db, "customers")
        assert report.rows_fetched == len(rows)
        assert report.plan.access_path is AccessPath.FULL_SCAN
