"""NULL-handling parity between ``Predicate.evaluate`` and the SQL lowering.

``Predicate.evaluate`` is two-valued: ``None`` is a value that equals
nothing, so ``!=`` and ``NOT IN`` hold on NULL rows while ``=`` and ``IN``
do not.  SQL's three-valued logic would silently drop those rows from
negated atoms.  These tests run both sides against the same SQLite table
(with NULLs present) and require identical row sets — the truth-parity
contract documented in :mod:`repro.sql.compiler`.
"""

import sqlite3

import pytest

from repro.core.predicates import (
    And,
    Comparison,
    InSet,
    Not,
    Op,
    Or,
    equals,
)
from repro.exceptions import PredicateError
from repro.sql.compiler import compile_predicate

ROWS = [
    (1, "paris", 10),
    (2, "rome", None),
    (3, None, 30),
    (4, "berlin", None),
    (5, None, None),
    (6, "paris", 60),
]


@pytest.fixture(scope="module")
def connection():
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE t (id INTEGER, city TEXT, n INTEGER)")
    connection.executemany("INSERT INTO t VALUES (?, ?, ?)", ROWS)
    yield connection
    connection.close()


def sql_ids(connection, pred):
    sql = f"SELECT id FROM t WHERE {compile_predicate(pred)}"
    return {row[0] for row in connection.execute(sql)}


def eval_ids(pred):
    return {
        id_
        for id_, city, n in ROWS
        if pred.evaluate({"id": id_, "city": city, "n": n})
    }


PARITY_CASES = [
    equals("city", "paris"),
    Comparison("city", Op.NE, "paris"),
    Comparison("n", Op.NE, 10),
    InSet("city", ("paris", "rome")),
    Not(InSet("city", ("paris", "rome"))),
    Not(equals("city", "paris")),
    Not(Not(equals("city", "paris"))),
    And((Comparison("city", Op.NE, "paris"), Comparison("n", Op.NE, 10))),
    Or((equals("city", "rome"), Comparison("n", Op.NE, 10))),
    Not(And((equals("city", "paris"), equals("n", 10)))),
    Not(Or((InSet("city", ("rome",)), equals("n", 30)))),
    Or((Not(InSet("city", ("paris",))), equals("n", 60))),
]


class TestNullParity:
    @pytest.mark.parametrize(
        "pred", PARITY_CASES, ids=[repr(p) for p in PARITY_CASES]
    )
    def test_sql_matches_evaluate(self, connection, pred):
        assert sql_ids(connection, pred) == eval_ids(pred)

    def test_ne_keeps_null_rows(self, connection):
        pred = Comparison("city", Op.NE, "paris")
        assert sql_ids(connection, pred) == {2, 3, 4, 5}

    def test_not_in_keeps_null_rows(self, connection):
        pred = Not(InSet("city", ("paris", "rome")))
        assert sql_ids(connection, pred) == {3, 4, 5}

    def test_generic_not_keeps_unknown_rows(self, connection):
        # NOT over a conjunction whose inner result is unknown on NULL
        # rows: IS NOT TRUE maps unknown to true, matching evaluate().
        pred = Not(And((equals("city", "paris"), equals("n", 10))))
        assert sql_ids(connection, pred) == {2, 3, 4, 5, 6}

    def test_ordered_comparison_on_none_raises(self):
        # Ordered comparisons are exempt from the parity contract:
        # evaluate() refuses to order None against a bound.
        with pytest.raises(PredicateError):
            Comparison("n", Op.LT, 10).evaluate({"n": None})
