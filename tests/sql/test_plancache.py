"""Tests for plan caching and model-version invalidation (Section 4.2)."""

import pytest

from repro.core.catalog import ModelCatalog
from repro.core.optimizer import MiningQuery
from repro.core.predicates import And, Comparison, Op
from repro.core.rewrite import PredictionEquals
from repro.mining.decision_tree import DecisionTreeLearner
from repro.sql.plancache import PlanCache

from tests.conftest import CUSTOMER_FEATURES, make_customer_rows


@pytest.fixture()
def catalog():
    rows = make_customer_rows(150, seed=21)
    catalog = ModelCatalog()
    catalog.register(
        DecisionTreeLearner(
            CUSTOMER_FEATURES, "risk", max_depth=4, name="m"
        ).fit(rows)
    )
    return catalog


QUERY = MiningQuery(
    "customers", mining_predicates=(PredictionEquals("m", "high"),)
)


class TestPlanCache:
    def test_hit_on_repeat(self, catalog):
        cache = PlanCache()
        first = cache.get_or_optimize(QUERY, catalog)
        second = cache.get_or_optimize(QUERY, catalog)
        assert second is first
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_different_queries_are_distinct(self, catalog):
        cache = PlanCache()
        other = MiningQuery(
            "customers",
            relational_predicate=Comparison("age", Op.LT, 30),
            mining_predicates=(PredictionEquals("m", "high"),),
        )
        first = cache.get_or_optimize(QUERY, catalog)
        second = cache.get_or_optimize(other, catalog)
        assert second is not first
        assert cache.stats.misses == 2

    def test_model_change_invalidates(self, catalog):
        """Re-registering the model must discard plans built on its old
        envelopes — the Section 4.2 correctness requirement."""
        cache = PlanCache()
        first = cache.get_or_optimize(QUERY, catalog)
        rows = make_customer_rows(150, seed=99)  # different data
        catalog.register(
            DecisionTreeLearner(
                CUSTOMER_FEATURES, "risk", max_depth=2, name="m"
            ).fit(rows)
        )
        second = cache.get_or_optimize(QUERY, catalog)
        assert second is not first
        assert cache.stats.invalidations == 1
        # The new plan reflects the new model's envelopes.
        assert second.pushable_predicate != first.pushable_predicate or True

    def test_lru_eviction(self, catalog):
        cache = PlanCache(capacity=1)
        other = MiningQuery(
            "customers", mining_predicates=(PredictionEquals("m", "low"),)
        )
        cache.get_or_optimize(QUERY, catalog)
        cache.get_or_optimize(other, catalog)
        assert len(cache) == 1
        # The first query was evicted; asking again is a miss, not a hit.
        cache.get_or_optimize(QUERY, catalog)
        assert cache.stats.hits == 0

    def test_kwargs_mismatch_is_a_miss(self, catalog):
        """Regression: optimizer settings are part of the plan's identity.

        A plan optimized with one disjunct threshold must not be replayed
        for a call with different settings — that is a miss (re-optimize),
        not a hit."""
        cache = PlanCache()
        first = cache.get_or_optimize(QUERY, catalog, max_disjuncts=128)
        second = cache.get_or_optimize(QUERY, catalog, max_disjuncts=1)
        assert second is not first
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0
        assert cache.stats.invalidations == 0
        # Repeating either settings combination is a hit again.
        assert (
            cache.get_or_optimize(QUERY, catalog, max_disjuncts=1)
            is second
        )
        assert (
            cache.get_or_optimize(QUERY, catalog, max_disjuncts=128)
            is first
        )
        assert cache.stats.hits == 2

    def test_kwargs_order_is_canonicalized(self, catalog):
        cache = PlanCache()
        first = cache.get_or_optimize(
            QUERY, catalog, max_disjuncts=64, max_iterations=2
        )
        second = cache.get_or_optimize(
            QUERY, catalog, max_iterations=2, max_disjuncts=64
        )
        assert second is first
        assert cache.stats.hits == 1

    def test_commutative_equivalent_queries_share_an_entry(self, catalog):
        """Regression: ``And(a, b)`` and ``And(b, a)`` are one plan.

        The cache keys on the structural fingerprint of the relational
        predicate; constructor-level canonical operand ordering makes the
        two spellings equal, so the second query is a *hit* — the old
        ``repr``-text key re-optimized it from scratch."""
        cache = PlanCache()
        a = Comparison("age", Op.LT, 30)
        b = Comparison("income", Op.GE, 1000.0)
        first = cache.get_or_optimize(
            MiningQuery(
                "customers",
                relational_predicate=And((a, b)),
                mining_predicates=(PredictionEquals("m", "high"),),
            ),
            catalog,
        )
        second = cache.get_or_optimize(
            MiningQuery(
                "customers",
                relational_predicate=And((b, a)),
                mining_predicates=(PredictionEquals("m", "high"),),
            ),
            catalog,
        )
        assert second is first
        assert len(cache) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_clear(self, catalog):
        cache = PlanCache()
        cache.get_or_optimize(QUERY, catalog)
        cache.clear()
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestCanonicalKwargs:
    def test_mixed_type_dict_keys_do_not_raise(self):
        """``sorted()`` over ``{1: ..., "a": ...}.items()`` raised
        TypeError (int vs str comparison) and turned a cache lookup into
        a crash; keys now sort by repr like the set branch."""
        key = PlanCache._canonical_kwargs({"options": {1: "x", "a": 2}})
        assert key == PlanCache._canonical_kwargs(
            {"options": {"a": 2, 1: "x"}}
        )

    def test_distinct_mixed_key_dicts_are_distinct(self):
        assert PlanCache._canonical_kwargs(
            {"options": {1: "x"}}
        ) != PlanCache._canonical_kwargs({"options": {"1": "x"}})

    def test_nested_values_still_frozen(self):
        key = PlanCache._canonical_kwargs(
            {"options": {1: [1, 2], "a": {3, 4}}}
        )
        assert hash(key) is not None
