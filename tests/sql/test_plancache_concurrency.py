"""PlanCache thread-safety: consistent counters and plans under load."""

from __future__ import annotations

import threading

from repro.core.catalog import ModelCatalog
from repro.core.optimizer import MiningQuery
from repro.core.rewrite import PredictionEquals
from repro.ir import fingerprint as ir_fingerprint
from repro.sql.plancache import PlanCache

from tests.conftest import make_customer_rows
from repro.mining.decision_tree import DecisionTreeLearner

THREADS = 8
ROUNDS = 30


def _setup():
    rows = make_customer_rows(200)
    model = DecisionTreeLearner(
        ("age", "income", "gender", "region"),
        "risk",
        max_depth=4,
        name="risk_tree",
    ).fit(rows)
    catalog = ModelCatalog()
    catalog.register(model)
    queries = [
        MiningQuery(
            "customers",
            mining_predicates=(PredictionEquals("risk_tree", label),),
        )
        for label in ("high", "medium", "low")
    ]
    return catalog, queries


def test_concurrent_lookups_keep_counters_consistent():
    catalog, queries = _setup()
    cache = PlanCache(capacity=2)  # below the distinct-query count
    results: list[list] = [[] for _ in range(THREADS)]
    barrier = threading.Barrier(THREADS)

    def worker(slot: int) -> None:
        barrier.wait()
        for round_number in range(ROUNDS):
            query = queries[(slot + round_number) % len(queries)]
            plan = cache.get_or_optimize(query, catalog)
            results[slot].append(
                (query.mining_predicates[0].describe(), plan)
            )

    threads = [
        threading.Thread(target=worker, args=(slot,))
        for slot in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total_calls = THREADS * ROUNDS
    stats = cache.stats
    # Every lookup is exactly one hit or one miss — no lost updates.
    assert stats.hits + stats.misses == total_calls
    assert stats.lookups == total_calls
    assert stats.invalidations == 0
    assert stats.evictions > 0  # capacity 2 under 3 distinct queries
    assert len(cache) <= 2

    # Every thread got an equivalent plan for the same query.
    canonical: dict[str, str] = {}
    for slot_results in results:
        for described, plan in slot_results:
            digest = ir_fingerprint(plan.pushable_predicate)
            assert canonical.setdefault(described, digest) == digest


def test_concurrent_hits_on_single_entry():
    catalog, queries = _setup()
    cache = PlanCache(capacity=8)
    cache.get_or_optimize(queries[0], catalog)  # pre-populate

    def worker() -> None:
        for _ in range(ROUNDS):
            cache.get_or_optimize(queries[0], catalog)

    threads = [threading.Thread(target=worker) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert cache.stats.hits == THREADS * ROUNDS
    assert cache.stats.misses == 1
    assert cache.stats.evictions == 0
    assert len(cache) == 1
