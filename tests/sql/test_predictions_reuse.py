"""Each model scores a given row at most once end-to-end.

The optimized path's residual filter already scores (and memoizes) every
surviving row; :meth:`PredictionJoinExecutor.predictions` must surface
those memos instead of re-scoring the result rows with ``predict_many``.
"""

import pytest

from repro.core.catalog import ModelCatalog
from repro.core.derive import derive_envelopes
from repro.core.optimizer import MiningQuery
from repro.core.rewrite import PredictionEquals, PredictionIn
from repro.mining.base import MiningModel
from repro.mining.decision_tree import DecisionTreeLearner
from repro.sql.database import Database, load_table
from repro.sql.miningext import PredictionJoinExecutor

from tests.conftest import CUSTOMER_FEATURES, make_customer_rows


class CountingModel(MiningModel):
    """Delegates to a trained model, counting scores per row id."""

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.prediction_column = inner.prediction_column
        self.row_counts: dict = {}

    @property
    def kind(self):
        return self.inner.kind

    @property
    def feature_columns(self):
        return self.inner.feature_columns

    @property
    def class_labels(self):
        return self.inner.class_labels

    def _count(self, rows):
        for row in rows:
            key = row["row_id"]
            self.row_counts[key] = self.row_counts.get(key, 0) + 1

    def predict(self, row):
        self._count([row])
        return self.inner.predict(row)

    def predict_batch(self, batch):
        self._count(batch.rows())
        return self.inner.predict_batch(batch)

    def predict_many(self, rows):
        rows = list(rows)
        self._count(rows)
        return self.inner.predict_many(rows)


@pytest.fixture(scope="module")
def trained():
    rows = make_customer_rows()
    inner = DecisionTreeLearner(
        CUSTOMER_FEATURES, "risk", max_depth=6, name="risk_tree"
    ).fit(rows)
    envelopes = derive_envelopes(inner)
    feature_rows = [
        {"row_id": i, **{c: row[c] for c in CUSTOMER_FEATURES}}
        for i, row in enumerate(rows)
    ]
    return inner, envelopes, feature_rows


def build_executor(trained, **executor_kwargs):
    inner, envelopes, feature_rows = trained
    model = CountingModel(inner)
    catalog = ModelCatalog()
    catalog.register(model, envelopes=envelopes)
    db = Database()
    load_table(db, "customers", feature_rows)
    executor = PredictionJoinExecutor(db, catalog, **executor_kwargs)
    return db, executor, model


@pytest.mark.parametrize("vectorized", [True, False])
@pytest.mark.parametrize("optimize_query", [True, False])
def test_each_row_scored_at_most_once(trained, vectorized, optimize_query):
    db, executor, model = build_executor(trained, vectorized=vectorized)
    try:
        query = MiningQuery(
            "customers",
            mining_predicates=(PredictionEquals("risk_tree", "high"),),
        )
        enriched = executor.predictions(
            query, optimize_query=optimize_query
        )
        assert enriched  # the class exists in the data
        assert model.row_counts, "the model was never consulted"
        over_scored = {
            key: n for key, n in model.row_counts.items() if n > 1
        }
        assert over_scored == {}
    finally:
        db.close()


@pytest.mark.parametrize("vectorized", [True, False])
def test_prediction_column_matches_model(trained, vectorized):
    inner, _, _ = trained
    db, executor, model = build_executor(trained, vectorized=vectorized)
    try:
        query = MiningQuery(
            "customers",
            mining_predicates=(PredictionEquals("risk_tree", "high"),),
        )
        for row in executor.predictions(query):
            label = row.pop(inner.prediction_column)
            assert label == "high"
            assert inner.predict(row) == "high"
    finally:
        db.close()


@pytest.mark.parametrize("vectorized", [True, False])
def test_two_predicates_on_one_model_share_scores(trained, vectorized):
    db, executor, model = build_executor(trained, vectorized=vectorized)
    try:
        query = MiningQuery(
            "customers",
            mining_predicates=(
                PredictionIn("risk_tree", ("low", "medium", "high")),
                PredictionEquals("risk_tree", "high"),
            ),
        )
        executor.predictions(query)
        assert max(model.row_counts.values()) == 1
    finally:
        db.close()


@pytest.mark.parametrize("vectorized", [True, False])
def test_report_predictions_align_with_rows(trained, vectorized):
    inner, _, _ = trained
    db, executor, model = build_executor(trained, vectorized=vectorized)
    try:
        query = MiningQuery(
            "customers",
            mining_predicates=(PredictionEquals("risk_tree", "high"),),
        )
        report = executor.execute_optimized(query)
        assert report.predictions is not None
        labels = report.predictions["risk_tree"]
        assert len(labels) == len(report.rows)
        for row, label in zip(report.rows, labels):
            assert label == "high"
            assert inner.predict(row) == "high"
    finally:
        db.close()
