"""Unit tests for statistics, the index advisor, and plan capture."""

import pytest

from repro.core.predicates import (
    FALSE,
    TRUE,
    Comparison,
    Interval,
    Op,
    conjunction,
    disjunction,
    equals,
    in_set,
)
from repro.sql.advisor import (
    candidate_indexes,
    recommend_indexes,
    tune_for_workload,
)
from repro.sql.database import Database, load_table
from repro.sql.planner import (
    AccessPath,
    CONSTANT_SCAN_PLAN,
    FULL_SCAN_PLAN,
    capture_plan,
    compare_plans,
    parse_explain,
)
from repro.sql.stats import build_table_stats, estimate_selectivity

ROWS = [
    {
        "id": i,
        "bucket": i % 10,
        "rare": 1 if i % 100 == 0 else 0,
        "city": ["paris", "rome", "berlin", "madrid"][i % 4],
    }
    for i in range(2000)
]


@pytest.fixture(scope="module")
def db():
    with Database() as database:
        load_table(database, "t", ROWS)
        yield database


@pytest.fixture(scope="module")
def stats():
    return build_table_stats("t", ROWS, row_count=len(ROWS))


class TestSelectivityEstimation:
    def test_equality_on_common_value(self, stats):
        estimated = estimate_selectivity(stats, equals("bucket", 3))
        assert estimated == pytest.approx(0.1, abs=0.03)

    def test_equality_on_rare_value(self, stats):
        estimated = estimate_selectivity(stats, equals("rare", 1))
        assert estimated == pytest.approx(0.01, abs=0.005)

    def test_range(self, stats):
        estimated = estimate_selectivity(
            stats, Comparison("id", Op.LT, 200)
        )
        assert estimated == pytest.approx(0.1, abs=0.05)

    def test_interval(self, stats):
        estimated = estimate_selectivity(stats, Interval("id", 0, 999))
        assert estimated == pytest.approx(0.5, abs=0.08)

    def test_conjunction_multiplies(self, stats):
        pred = conjunction([equals("bucket", 3), equals("city", "paris")])
        estimated = estimate_selectivity(stats, pred)
        assert estimated == pytest.approx(0.1 * 0.25, abs=0.02)

    def test_disjunction_inclusion_exclusion(self, stats):
        pred = disjunction([equals("bucket", 3), equals("bucket", 4)])
        estimated = estimate_selectivity(stats, pred)
        assert estimated == pytest.approx(0.19, abs=0.04)

    def test_constants(self, stats):
        assert estimate_selectivity(stats, TRUE) == 1.0
        assert estimate_selectivity(stats, FALSE) == 0.0

    def test_in_set(self, stats):
        pred = in_set("city", ["paris", "rome"])
        assert estimate_selectivity(stats, pred) == pytest.approx(
            0.5, abs=0.05
        )


class TestAdvisor:
    def test_candidates_from_selective_workload(self, stats):
        workload = [equals("rare", 1)]
        candidates = candidate_indexes(workload, stats)
        assert any(c.columns == ("rare",) for c in candidates)

    def test_unselective_workload_yields_nothing(self, stats):
        workload = [Comparison("id", Op.GE, 0)]
        candidates = candidate_indexes(workload, stats)
        assert all(c.queries_served == 0 for c in candidates) or not candidates

    def test_disjunctive_query_needs_column_in_every_disjunct(self, stats):
        served = disjunction(
            [
                conjunction([equals("rare", 1), equals("bucket", 1)]),
                conjunction([equals("rare", 1), equals("city", "paris")]),
            ]
        )
        not_served = disjunction([equals("rare", 1), equals("city", "paris")])
        candidates = candidate_indexes([served, not_served], stats)
        rare = [c for c in candidates if c.columns == ("rare",)]
        assert rare and rare[0].queries_served == 1

    def test_budget_respected(self, stats):
        workload = [
            equals("rare", 1),
            equals("bucket", 0),
            equals("city", "paris"),
        ]
        recommendation = recommend_indexes(workload, stats, budget=1)
        assert len(recommendation.chosen) <= 1

    def test_tune_creates_indexes(self):
        with Database() as database:
            load_table(database, "t", ROWS)
            recommendation = tune_for_workload(
                database, "t", [equals("rare", 1)]
            )
            assert recommendation.chosen
            assert database.index_names("t")


class TestPlanner:
    def test_false_predicate_is_constant_scan(self, db):
        plan = capture_plan(db, "t", FALSE)
        assert plan is CONSTANT_SCAN_PLAN
        assert plan.is_constant

    def test_full_scan_without_indexes(self):
        with Database() as database:
            load_table(database, "t", ROWS)
            plan = capture_plan(database, "t", equals("rare", 1))
            assert plan.access_path is AccessPath.FULL_SCAN

    def test_index_search_with_index(self):
        with Database() as database:
            load_table(database, "t", ROWS)
            database.create_index("t", ["rare"])
            database.analyze()
            plan = capture_plan(database, "t", equals("rare", 1))
            assert plan.uses_index
            assert any("rare" in name for name in plan.index_names)

    def test_plan_change_criterion(self):
        baseline = FULL_SCAN_PLAN
        assert CONSTANT_SCAN_PLAN.changed_from(baseline)
        assert not FULL_SCAN_PLAN.changed_from(baseline)

    def test_compare_plans(self):
        with Database() as database:
            load_table(database, "t", ROWS)
            database.create_index("t", ["rare"])
            comparison = compare_plans(
                database, "t", TRUE, equals("rare", 1)
            )
            assert comparison.changed

    def test_parse_explain_multi_index_or(self):
        rows = [
            (0, 0, 0, "MULTI-INDEX OR"),
            (1, 0, 0, "SEARCH t USING INDEX idx_a (a=?)"),
            (2, 0, 0, "SEARCH t USING INDEX idx_b (b=?)"),
        ]
        plan = parse_explain(rows)
        assert plan.uses_index
        assert plan.index_names == ("idx_a", "idx_b")

    def test_parse_explain_scan(self):
        plan = parse_explain([(0, 0, 0, "SCAN t")])
        assert plan.access_path is AccessPath.FULL_SCAN
