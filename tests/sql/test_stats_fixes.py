"""Regression tests for the selectivity-estimator bugfixes.

Three distinct defects, each with a test that fails on the old code:

* ``equality_selectivity`` returned ``1/distinct`` for values absent from
  the sample even when the tracked common values already accounted for all
  probability mass;
* ``range_selectivity`` silently treated a non-numeric bound on a numeric
  column as unbounded;
* ``build_column_stats`` admitted ``bool`` values into numeric histogram
  boundaries (``isinstance(True, int)`` is true in Python);
* the equi-depth histogram never included the sample maximum, so
  ``col >= max(sample)`` estimated 0.0 despite matching rows.
"""

import pytest

from repro.core.columns import ColumnBatch
from repro.core.predicates import And, Comparison, Op, Predicate, equals
from repro.sql.stats import (
    _GENERIC_SELECTIVITY,
    build_column_stats,
    build_table_stats,
    estimate_selectivity,
)


class TestEqualitySelectivity:
    def test_unseen_value_in_fully_enumerated_column_estimates_zero(self):
        # Five distinct values, all tracked: the sample enumerates the
        # column fully, so an unseen value has no mass left to claim.
        stats = build_column_stats("c", ["a", "b", "c", "d", "e"] * 20)
        assert stats.distinct == 5
        assert stats.equality_selectivity("unseen") == 0.0

    def test_unseen_value_shares_leftover_mass(self):
        # 30 distinct values but only 24 tracked: the untracked 6 values
        # hold the leftover mass, so an unseen value claims its share of
        # it — not a full 1/30.
        values = ["common"] * 70 + [f"rare_{i}" for i in range(30)]
        stats = build_column_stats("c", values)
        assert stats.distinct == 31
        leftover = 1.0 - sum(stats.top_values.values())
        expected = leftover / (stats.distinct - len(stats.top_values))
        assert stats.equality_selectivity("unseen") == pytest.approx(
            expected
        )
        assert stats.equality_selectivity("unseen") < 1 / stats.distinct

    def test_seen_value_still_uses_tracked_frequency(self):
        stats = build_column_stats("c", ["a"] * 75 + ["b"] * 25)
        assert stats.equality_selectivity("a") == pytest.approx(0.75)
        assert stats.equality_selectivity("b") == pytest.approx(0.25)

    def test_regression_old_overestimate_misordered_and_operands(self):
        """The estimator-sorted AND must run the unseen-value EQ first.

        ``fruit`` is fully enumerated (4 distinct), so ``fruit = 'kiwi'``
        is truly impossible (actual selectivity 0).  The old ``1/distinct``
        estimate (0.25) exceeded the other conjunct's 0.2, so
        ``And.evaluate_batch`` ran the wrong operand first and the
        expensive conjunct saw the full batch instead of zero rows.
        """
        rows = [
            {"fruit": ["apple", "pear", "plum", "fig"][i % 4], "n": i % 5}
            for i in range(200)
        ]
        stats = build_table_stats("t", rows)
        impossible = equals("fruit", "kiwi")
        other = equals("n", 0)  # selectivity 0.2
        assert estimate_selectivity(stats, impossible) == 0.0
        assert estimate_selectivity(stats, impossible) < estimate_selectivity(
            stats, other
        )

        seen: list[int] = []

        class Counting(Predicate):
            """Wraps a predicate, recording how many rows it evaluates."""

            def __init__(self, inner):
                self.inner = inner

            def evaluate(self, row):
                return self.inner.evaluate(row)

            def evaluate_batch(self, batch, estimator=None):
                seen.append(len(batch))
                return self.inner.evaluate_batch(batch, estimator)

            def columns(self):
                return self.inner.columns()

        def estimator(predicate):
            if isinstance(predicate, Counting):
                predicate = predicate.inner
            return estimate_selectivity(stats, predicate)

        conjunction = And((Counting(other), impossible))
        mask = conjunction.evaluate_batch(ColumnBatch(rows), estimator)
        assert not mask.any()
        # The impossible conjunct sorted first and emptied the batch, so
        # the (nominally expensive) other conjunct never saw a row.
        assert seen == []


class TestRangeSelectivity:
    @pytest.fixture
    def numeric_stats(self):
        return build_column_stats("n", list(range(100)))

    def test_non_numeric_low_bound_falls_back_to_generic(
        self, numeric_stats
    ):
        got = numeric_stats.range_selectivity("abc", None, True, True)
        assert got == _GENERIC_SELECTIVITY

    def test_non_numeric_high_bound_falls_back_to_generic(
        self, numeric_stats
    ):
        got = numeric_stats.range_selectivity(None, "abc", True, True)
        assert got == _GENERIC_SELECTIVITY

    def test_old_behavior_would_return_open_side(self, numeric_stats):
        # The defect: a string low bound was ignored, returning the
        # selectivity of ``n <= 49`` alone (~0.5); worse, an unbounded
        # string-only range returned ~1.0.
        assert numeric_stats.range_selectivity(
            "abc", 49, True, True
        ) == _GENERIC_SELECTIVITY
        assert numeric_stats.range_selectivity(
            "abc", None, True, True
        ) != pytest.approx(1.0)

    def test_numeric_bounds_still_use_histogram(self, numeric_stats):
        got = numeric_stats.range_selectivity(None, 49, True, True)
        assert got == pytest.approx(0.5, abs=0.05)

    def test_bool_bound_on_numeric_column_is_generic(self, numeric_stats):
        # bool is an int subclass, but a True/False bound on a numeric
        # histogram is a type confusion, not a number.
        got = numeric_stats.range_selectivity(True, None, True, True)
        assert got == _GENERIC_SELECTIVITY

    def test_comparison_estimate_uses_fallback(self):
        rows = [{"n": i} for i in range(50)]
        stats = build_table_stats("t", rows)
        pred = Comparison("n", Op.GT, "zzz")
        assert estimate_selectivity(stats, pred) == _GENERIC_SELECTIVITY


class TestHistogramMaximum:
    # 128 values force the sampled (equi-depth) branch; every pick used
    # to land strictly below the maximum.

    @pytest.fixture
    def skewed_stats(self):
        # Heavy mass at the maximum: 40 of 128 rows hold 99.
        values = list(range(88)) + [99] * 40
        return build_column_stats("n", values)

    def test_boundaries_include_sample_max(self, skewed_stats):
        assert skewed_stats.boundaries is not None
        assert skewed_stats.boundaries[-1] == 99.0

    def test_ge_max_is_not_zero(self, skewed_stats):
        # `n >= 99` matches 40/128 rows; the old histogram said 0.0,
        # sorting the predicate as if it were free and never matching.
        got = skewed_stats.range_selectivity(99, None, True, True)
        assert got > 0.0

    def test_point_interval_at_max_is_not_zero(self, skewed_stats):
        got = skewed_stats.range_selectivity(99, 99, True, True)
        assert got > 0.0

    def test_above_max_still_estimates_zero(self, skewed_stats):
        assert (
            skewed_stats.range_selectivity(100, None, False, True) == 0.0
        )

    def test_small_unsampled_histogram_unchanged(self):
        # <= bucket-count values keep the exact sorted boundaries.
        stats = build_column_stats("n", list(range(10)))
        assert stats.boundaries == tuple(float(v) for v in range(10))


class TestBoolColumns:
    def test_bool_column_builds_no_numeric_boundaries(self):
        stats = build_column_stats("flag", [True, False] * 50)
        assert stats.boundaries is None

    def test_mixed_bool_and_int_column_is_not_numeric(self):
        stats = build_column_stats("m", [True, 1, 2, 3] * 25)
        assert stats.boundaries is None

    def test_int_column_still_numeric(self):
        stats = build_column_stats("n", list(range(100)))
        assert stats.boundaries is not None
        # 32 equi-depth picks plus the appended true maximum.
        assert len(stats.boundaries) == 33
        assert stats.boundaries[-1] == 99.0

    def test_bool_column_range_falls_back_to_generic(self):
        stats = build_column_stats("flag", [True, False] * 50)
        got = stats.range_selectivity(0, 1, True, True)
        assert got == _GENERIC_SELECTIVITY


class TestBoolIntKeyCollision:
    """``True == 1 == 1.0`` as dict keys: top-value bookkeeping must
    distinguish bool from numeric the way ``_is_numeric`` does."""

    def test_mixed_bool_and_int_counts_stay_separate(self):
        # 60x True, 40x 1: one dict key under plain hashing, which both
        # merged the counts and answered either lookup with the blend.
        stats = build_column_stats("m", [True] * 60 + [1] * 40)
        assert stats.distinct == 2
        assert stats.equality_selectivity(True) == pytest.approx(0.6)
        assert stats.equality_selectivity(1) == pytest.approx(0.4)

    def test_false_and_zero_stay_separate(self):
        stats = build_column_stats("m", [False] * 30 + [0] * 70)
        assert stats.equality_selectivity(False) == pytest.approx(0.3)
        assert stats.equality_selectivity(0) == pytest.approx(0.7)

    def test_int_float_merging_preserved(self):
        # 1 == 1.0 is the *intended* numeric merge; only bool is special.
        stats = build_column_stats("n", [1] * 50 + [1.0] * 50)
        assert stats.distinct == 1
        assert stats.equality_selectivity(1) == pytest.approx(1.0)
        assert stats.equality_selectivity(1.0) == pytest.approx(1.0)

    def test_bool_lookup_on_int_column_misses(self):
        stats = build_column_stats("n", [1] * 100)
        assert stats.equality_selectivity(1) == pytest.approx(1.0)
        # True is a different value: it gets the unseen-value estimate,
        # not the int's full frequency.
        assert stats.equality_selectivity(True) < 1.0

    def test_estimate_selectivity_over_mixed_column(self):
        # Predicate constants cannot be bool (the predicate layer rejects
        # them), but *data* can: an int-constant equality over a column
        # holding mostly True must not inherit True's frequency.
        rows = [{"flag": True} for _ in range(80)] + [
            {"flag": 1} for _ in range(20)
        ]
        stats = build_table_stats("t", rows)
        eq_one = estimate_selectivity(stats, Comparison("flag", Op.EQ, 1))
        assert eq_one == pytest.approx(0.2)
