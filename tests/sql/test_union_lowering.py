"""UNION-of-index-range lowering: eligibility, semantics, plan gate.

The disjoint ``UNION ALL`` form must be a pure physical rewrite: same
row multiset as the flat ``WHERE``, same NULL handling as two-valued
``Predicate.evaluate``, adopted only when the captured plans prove it
strictly better (flat full-scans, every union branch seeks an index).
"""

import sqlite3

import pytest

from repro.core.predicates import (
    And,
    Comparison,
    FalsePredicate,
    InSet,
    Not,
    Op,
    Or,
    TruePredicate,
    equals,
)
from repro.sql.compiler import (
    select_statement,
    union_eligible,
    union_select_statement,
)
from repro.sql.database import Database, load_table
from repro.sql.planner import (
    AccessPath,
    capture_plan,
    capture_select_plan,
)

ATOM = Comparison("x", Op.LT, 10)
CONJ = And((equals("seg", 1), Comparison("x", Op.LT, 10)))


class TestUnionEligible:
    def test_or_of_atoms_and_conjunctions(self):
        assert union_eligible(Or((ATOM, CONJ, equals("seg", 2))))

    def test_non_or_is_not_eligible(self):
        assert not union_eligible(CONJ)
        assert not union_eligible(ATOM)
        assert not union_eligible(TruePredicate())

    def test_branch_cap(self):
        wide = Or(tuple(equals("seg", k) for k in range(6)))
        assert union_eligible(wide)
        assert not union_eligible(wide, max_branches=3)

    def test_constant_disjunct_is_not_eligible(self):
        assert not union_eligible(Or((ATOM, TruePredicate())))
        assert not union_eligible(Or((ATOM, FalsePredicate())))


class TestUnionStatement:
    def test_branch_count_and_disjointness_terms(self):
        pred = Or((equals("seg", 0), equals("seg", 1), equals("seg", 2)))
        sql = union_select_statement("t", pred, "id")
        branches = sql.split(" UNION ALL ")
        assert len(branches) == 3
        # The first branch is the plain disjunct; every later branch
        # carries an IS NOT TRUE guard excluding earlier disjuncts.
        assert "IS NOT TRUE" not in branches[0]
        assert all("IS NOT TRUE" in b for b in branches[1:])

    def test_requires_top_level_or(self):
        from repro.exceptions import PredicateError

        with pytest.raises(PredicateError):
            union_select_statement("t", CONJ)


ROWS = [
    (1, "paris", 10),
    (2, "rome", None),
    (3, None, 30),
    (4, "berlin", None),
    (5, None, None),
    (6, "paris", 60),
    # Duplicate of row 6's payload under a new id: bag semantics must
    # survive the rewrite even when branches overlap on such rows.
    (7, "paris", 60),
]

OR_PARITY_CASES = [
    Or((equals("city", "rome"), Comparison("n", Op.NE, 10))),
    Or((Not(InSet("city", ("paris",))), equals("n", 60))),
    Or((equals("city", "paris"), equals("city", "rome"), equals("n", 30))),
    Or((
        And((equals("city", "paris"), Comparison("n", Op.NE, 60))),
        And((Comparison("city", Op.NE, "paris"), InSet("n", (30, 60)))),
    )),
    # Overlapping disjuncts: rows satisfying both must appear once.
    Or((equals("city", "paris"), Comparison("n", Op.NE, 10))),
]


@pytest.fixture(scope="module")
def connection():
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE t (id INTEGER, city TEXT, n INTEGER)")
    connection.executemany("INSERT INTO t VALUES (?, ?, ?)", ROWS)
    yield connection
    connection.close()


def union_ids(connection, pred):
    sql = union_select_statement("t", pred, "id")
    return sorted(row[0] for row in connection.execute(sql))


def eval_ids(pred):
    return sorted(
        id_
        for id_, city, n in ROWS
        if pred.evaluate({"id": id_, "city": city, "n": n})
    )


class TestUnionNullParity:
    @pytest.mark.parametrize(
        "pred", OR_PARITY_CASES, ids=[repr(p) for p in OR_PARITY_CASES]
    )
    def test_union_matches_evaluate(self, connection, pred):
        # sorted lists, not sets: duplicates (rows 6 and 7 share a
        # payload) must appear exactly as often as in the flat form.
        assert union_ids(connection, pred) == eval_ids(pred)

    @pytest.mark.parametrize(
        "pred", OR_PARITY_CASES, ids=[repr(p) for p in OR_PARITY_CASES]
    )
    def test_union_matches_flat_sql(self, connection, pred):
        flat_sql = select_statement("t", pred, "id")
        flat = sorted(row[0] for row in connection.execute(flat_sql))
        assert union_ids(connection, pred) == flat


def _low_cardinality_db(rows=1500, segments=4):
    """The regime the lowering exists for: indexed low-card equality
    disjuncts whose flat OR SQLite prices above one sequential scan."""
    db = Database()
    load_table(
        db,
        "t",
        [{"seg": i % segments, "x": float(i % 100)} for i in range(rows)],
    )
    db.create_index("t", ["seg"])
    db.analyze()
    pred = Or(tuple(
        And((equals("seg", k), Comparison("x", Op.LT, 40.0 + k)))
        for k in range(segments)
    ))
    return db, pred


class TestCaptureSelectPlan:
    def test_adopts_union_when_flat_full_scans(self):
        db, pred = _low_cardinality_db()
        flat = capture_plan(db, "t", pred)
        assert flat.access_path is AccessPath.FULL_SCAN
        select = capture_select_plan(db, "t", pred)
        assert select.used_union
        assert select.branches == 4
        assert select.plan.access_path is AccessPath.INDEX_SEARCH
        assert "UNION ALL" in select.sql

    def test_union_rows_match_flat_rows(self):
        db, pred = _low_cardinality_db()
        select = capture_select_plan(db, "t", pred)
        assert select.used_union
        flat_rows = sorted(
            map(repr, db.query_rows(select_statement("t", pred)))
        )
        union_rows = sorted(map(repr, db.query_rows(select.sql)))
        assert flat_rows == union_rows

    def test_keeps_flat_when_multi_index_or_fires(self):
        # High-cardinality equality disjuncts: SQLite's own multi-index
        # OR already seeks, so the flat form is not a full scan and the
        # union rewrite must not be attempted.
        db = Database()
        load_table(
            db,
            "t",
            [{"b": i, "x": float(i % 100)} for i in range(3000)],
        )
        db.create_index("t", ["b"])
        db.analyze()
        pred = Or(tuple(
            And((equals("b", k * 7), Comparison("x", Op.LT, 50.0)))
            for k in range(4)
        ))
        select = capture_select_plan(db, "t", pred)
        assert not select.used_union
        assert select.branches == 1
        assert select.plan.access_path is AccessPath.INDEX_SEARCH

    def test_keeps_flat_without_an_index(self):
        # No index: the union's branches would each scan, repeating
        # table passes — strictly worse than one flat scan, so the
        # gate must refuse even though the flat form full-scans.
        db = Database()
        load_table(
            db,
            "t",
            [{"seg": i % 4, "x": float(i)} for i in range(500)],
        )
        pred = Or(tuple(
            And((equals("seg", k), Comparison("x", Op.LT, 100.0)))
            for k in range(4)
        ))
        select = capture_select_plan(db, "t", pred)
        assert not select.used_union
        assert select.plan.access_path is AccessPath.FULL_SCAN
        assert "UNION ALL" not in select.sql

    def test_ineligible_or_keeps_flat(self):
        # Too many branches for the cap: gate refuses before planning.
        db, _ = _low_cardinality_db()
        pred = Or(tuple(
            And((equals("seg", k % 4), Comparison("x", Op.LT, float(k))))
            for k in range(20)
        ))
        select = capture_select_plan(db, "t", pred, max_branches=8)
        assert not select.used_union
