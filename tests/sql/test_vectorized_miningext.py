"""Vectorized residual filtering: identity with the scalar path, knobs,
memoization, and the stripped-envelope columnar prefilter."""

import pytest

from repro.core.catalog import ModelCatalog
from repro.core.columns import ColumnBatch
from repro.core.optimizer import MiningQuery
from repro.core.predicates import Comparison, Op
from repro.core.rewrite import (
    PredictionEquals,
    PredictionIn,
    PredictionJoinColumn,
    PredictionJoinPrediction,
)
from repro.exceptions import ModelError
from repro.mining.base import MiningModel
from repro.mining.decision_tree import DecisionTreeLearner
from repro.mining.kmeans import KMeansLearner
from repro.mining.naive_bayes import NaiveBayesLearner
from repro.sql.database import Database, load_table
from repro.sql.miningext import PredictionJoinExecutor

from tests.conftest import CUSTOMER_FEATURES, make_customer_rows


@pytest.fixture(scope="module")
def rows():
    return make_customer_rows(500, seed=13)


@pytest.fixture(scope="module")
def catalog(rows):
    catalog = ModelCatalog()
    catalog.register(
        DecisionTreeLearner(
            CUSTOMER_FEATURES, "risk", max_depth=6, name="v_tree"
        ).fit(rows)
    )
    catalog.register(
        NaiveBayesLearner(
            CUSTOMER_FEATURES, "risk", bins=5, name="v_nb"
        ).fit(rows)
    )
    catalog.register(
        KMeansLearner(("age", "income"), 3, name="v_kmeans").fit(rows),
        rows=rows,
    )
    return catalog


@pytest.fixture(scope="module")
def db(rows):
    db = Database()
    # The table keeps 'risk' so PredictionJoinColumn queries work too.
    load_table(db, "customers", rows)
    yield db
    db.close()


QUERIES = {
    "equals": MiningQuery(
        "customers", mining_predicates=(PredictionEquals("v_tree", "high"),)
    ),
    "in": MiningQuery(
        "customers",
        mining_predicates=(PredictionIn("v_nb", ("low", "high")),),
    ),
    "join_models": MiningQuery(
        "customers",
        mining_predicates=(PredictionJoinPrediction("v_tree", "v_nb"),),
    ),
    "join_column": MiningQuery(
        "customers",
        mining_predicates=(PredictionJoinColumn("v_tree", "risk"),),
    ),
    "multi": MiningQuery(
        "customers",
        relational_predicate=Comparison("age", Op.LT, 60),
        mining_predicates=(
            PredictionIn("v_tree", ("low", "medium", "high")),
            PredictionEquals("v_nb", "medium"),
            PredictionEquals("v_kmeans", "cluster_0"),
        ),
    ),
}


def _executor(db, catalog, **kwargs):
    return PredictionJoinExecutor(db, catalog, **kwargs)


class TestScalarVectorizedIdentity:
    """The vectorized knob must never change the result rows."""

    @pytest.mark.parametrize("query_name", sorted(QUERIES))
    @pytest.mark.parametrize("gate", [0.2, None])
    @pytest.mark.parametrize("batch_size", [1, 7, 2048])
    def test_identical_rows(self, db, catalog, query_name, gate, batch_size):
        query = QUERIES[query_name]
        scalar = _executor(
            db, catalog, selectivity_gate=gate, vectorized=False
        )
        vectorized = _executor(
            db,
            catalog,
            selectivity_gate=gate,
            vectorized=True,
            batch_size=batch_size,
        )
        for execute in ("execute_naive", "execute_optimized"):
            want = getattr(scalar, execute)(query).rows
            got = getattr(vectorized, execute)(query).rows
            # Exact tuple equality: same rows, same order.
            assert got == want

    def test_stripped_envelope_prefilter_identity(self, db, catalog):
        # A tiny gate strips every envelope from the SQL, which routes
        # them through the columnar prefilter ahead of model scoring.
        query = QUERIES["multi"]
        scalar = _executor(
            db, catalog, selectivity_gate=1e-9, vectorized=False
        )
        vectorized = _executor(
            db, catalog, selectivity_gate=1e-9, vectorized=True
        )
        naive = vectorized.execute_naive(query)
        optimized = vectorized.execute_optimized(query)
        assert optimized.rows == scalar.execute_optimized(query).rows
        assert sorted(
            tuple(sorted(r.items())) for r in optimized.rows
        ) == sorted(tuple(sorted(r.items())) for r in naive.rows)

    def test_empty_fetch(self, db, catalog):
        query = MiningQuery(
            "customers",
            relational_predicate=Comparison("age", Op.LT, -100),
            mining_predicates=(PredictionEquals("v_tree", "high"),),
        )
        for vectorized in (False, True):
            executor = _executor(db, catalog, vectorized=vectorized)
            assert executor.execute_naive(query).rows == ()
            assert executor.execute_optimized(query).rows == ()


class TestKnobs:
    def test_knob_properties(self, db, catalog):
        executor = _executor(db, catalog, vectorized=True, batch_size=99)
        assert executor.vectorized is True
        assert executor.batch_size == 99
        scalar = _executor(db, catalog, vectorized=False)
        assert scalar.vectorized is False

    @pytest.mark.parametrize("bad", [0, -3])
    def test_bad_batch_size_rejected(self, db, catalog, bad):
        with pytest.raises(ModelError):
            _executor(db, catalog, batch_size=bad)

    def test_cli_rejects_bad_batch_size(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["bench-vectorized", "--batch-size", "0"])


class _CountingModel(MiningModel):
    """Delegates to a wrapped model, counting prediction entry points."""

    def __init__(self, inner: MiningModel, name: str) -> None:
        self.inner = inner
        self.name = name
        self.prediction_column = inner.prediction_column
        self.predict_calls = 0
        self.batch_calls = 0

    @property
    def kind(self):
        return self.inner.kind

    @property
    def feature_columns(self):
        return self.inner.feature_columns

    @property
    def class_labels(self):
        return self.inner.class_labels

    def predict(self, row):
        self.predict_calls += 1
        return self.inner.predict(row)

    def predict_batch(self, batch):
        self.batch_calls += 1
        return self.inner.predict_batch(batch)

    def to_dict(self):
        return self.inner.to_dict()


class TestMemoization:
    """Several predicates over one model must score each row once."""

    def _counting_setup(self, rows):
        inner = DecisionTreeLearner(
            CUSTOMER_FEATURES, "risk", max_depth=6, name="inner"
        ).fit(rows)
        counting = _CountingModel(inner, "counted")
        catalog = ModelCatalog()
        catalog.register(counting, envelopes={})
        query = MiningQuery(
            "customers",
            mining_predicates=(
                PredictionIn("counted", ("low", "medium", "high")),
                PredictionEquals("counted", "high"),
            ),
        )
        return counting, catalog, query

    def test_vectorized_one_batch_call_per_chunk(self, db, rows):
        counting, catalog, query = self._counting_setup(rows)
        executor = _executor(
            db, catalog, vectorized=True, batch_size=len(rows)
        )
        report = executor.execute_naive(query)
        assert report.rows_fetched == len(rows)
        # Two predicates, one chunk: the memo limits scoring to one call.
        assert counting.batch_calls == 1
        assert counting.predict_calls == 0

    def test_vectorized_chunking_counts(self, db, rows):
        counting, catalog, query = self._counting_setup(rows)
        executor = _executor(db, catalog, vectorized=True, batch_size=100)
        executor.execute_naive(query)
        expected_chunks = -(-len(rows) // 100)
        assert counting.batch_calls == expected_chunks

    def test_scalar_one_predict_per_row(self, db, rows):
        counting, catalog, query = self._counting_setup(rows)
        executor = _executor(db, catalog, vectorized=False)
        executor.execute_naive(query)
        # The per-row memo shares one prediction across both predicates.
        assert counting.predict_calls == len(rows)
        assert counting.batch_calls == 0

    def test_scalar_fallback_model_via_base_batch(self, db, rows):
        """A model without a vectorized kernel still works in batches."""

        class ScalarOnly(MiningModel):
            def __init__(self, inner):
                self.inner = inner
                self.name = "scalar_only"
                self.prediction_column = inner.prediction_column

            @property
            def kind(self):
                return self.inner.kind

            @property
            def feature_columns(self):
                return self.inner.feature_columns

            @property
            def class_labels(self):
                return self.inner.class_labels

            def predict(self, row):
                return self.inner.predict(row)

            def to_dict(self):
                return self.inner.to_dict()

        inner = NaiveBayesLearner(
            CUSTOMER_FEATURES, "risk", bins=5, name="nb_inner"
        ).fit(rows)
        model = ScalarOnly(inner)
        assert not model.supports_batch()
        batch = ColumnBatch(rows[:50])
        got = model.predict_batch(batch)
        assert list(got) == [model.predict(r) for r in rows[:50]]
        # predict_many routes through the scalar loop without error.
        assert model.predict_many(rows[:10]) == [
            model.predict(r) for r in rows[:10]
        ]

        catalog = ModelCatalog()
        catalog.register(model, envelopes={})
        query = MiningQuery(
            "customers",
            mining_predicates=(PredictionEquals("scalar_only", "high"),),
        )
        executor = _executor(db, catalog, vectorized=True)
        scalar_executor = _executor(db, catalog, vectorized=False)
        assert (
            executor.execute_naive(query).rows
            == scalar_executor.execute_naive(query).rows
        )


class TestReportSemantics:
    def test_time_split_preserved(self, db, catalog):
        executor = _executor(db, catalog, vectorized=True)
        report = executor.execute_optimized(QUERIES["equals"])
        assert report.sql_seconds >= 0.0
        assert report.model_seconds >= 0.0
        assert report.total_seconds == pytest.approx(
            report.sql_seconds + report.model_seconds
        )
        assert report.rows_returned == len(report.rows)

    def test_predictions_augmented_identically(self, db, catalog):
        vectorized = _executor(db, catalog, vectorized=True)
        scalar = _executor(db, catalog, vectorized=False)
        query = QUERIES["equals"]
        assert vectorized.predictions(query) == scalar.predictions(query)
        for row in vectorized.predictions(query):
            assert row["predicted_risk"] == "high"
