"""Integration tests for the ``python -m repro`` command line."""

import json

import pytest

from repro import obs
from repro.__main__ import main


@pytest.fixture
def clean_obs():
    """Disable tracing after tests that pass ``--trace``."""
    yield
    obs.configure(None)


class TestCLI:
    def test_tables_smoke(self, capsys):
        assert main(["tables", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "Average reduction in running time" in output
        assert "Paper" in output

    def test_figures_smoke(self, capsys):
        assert main(["figures", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        for figure in ("Figure 3", "Figure 4", "Figure 5", "Figure 6",
                       "Figure 7"):
            assert figure in output

    def test_report_smoke(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["report", "--scale", "smoke"]) == 0
        assert (tmp_path / "EXPERIMENTS.md").exists()

    def test_jobs_flag(self, capsys):
        from repro.experiments.config import default_jobs, set_default_jobs

        try:
            assert main(["tables", "--scale", "smoke", "--jobs", "2"]) == 0
            assert default_jobs() == 2
        finally:
            set_default_jobs(None)
        output = capsys.readouterr().out
        assert "Average reduction in running time" in output

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["tables", "--scale", "galactic"])

    def test_run_smoke(self, capsys):
        assert main(["run", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "strategies agree" in output

    def test_sweep_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "off")
        assert main(["sweep", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "measurements across" in output


class TestTraceCLI:
    def test_traced_run_round_trip(self, capsys, tmp_path, clean_obs):
        from repro.experiments import harness

        # A trained-model cache hit would skip (and so not trace) the
        # derivation phase this test asserts on.
        harness.clear_caches()
        trace_dir = tmp_path / "traces"
        assert main(
            ["run", "--scale", "smoke", "--trace", str(trace_dir)]
        ) == 0
        obs.configure(None)  # close the file before reading it back
        assert list(trace_dir.glob("*.jsonl"))

        assert main(
            ["trace-report", "--trace", str(trace_dir), "--strict"]
        ) == 0
        output = capsys.readouterr().out
        # Every lifecycle phase shows up as a span.
        for phase in (
            "derive.envelopes",
            "optimize",
            "plan.capture",
            "stats.build",
            "execute.optimized",
            "execute.sql",
            "execute.model",
        ):
            assert phase in output
        assert "Estimator accuracy" in output

    def test_estimator_records_carry_both_selectivities(
        self, tmp_path, clean_obs
    ):
        trace_dir = tmp_path / "traces"
        assert main(
            ["run", "--scale", "smoke", "--trace", str(trace_dir)]
        ) == 0
        obs.configure(None)
        records = [
            payload
            for path in trace_dir.glob("*.jsonl")
            for line in path.read_text().splitlines()
            for payload in [json.loads(line)]
            if payload["type"] == "estimator_accuracy"
        ]
        assert records
        for record in records:
            assert 0.0 <= record["estimated"] <= 1.0
            assert 0.0 <= record["actual"] <= 1.0

    def test_trace_report_fails_on_malformed_lines(
        self, capsys, tmp_path
    ):
        (tmp_path / "trace_bad.jsonl").write_text("{broken\n")
        assert main(["trace-report", "--trace", str(tmp_path)]) == 1
        assert main(
            ["trace-report", "--trace", str(tmp_path), "--strict"]
        ) == 1

    def test_trace_report_requires_directory(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_TRACE_DIR, raising=False)
        with pytest.raises(SystemExit):
            main(["trace-report"])

    def test_trace_report_reads_env_var(
        self, capsys, tmp_path, monkeypatch
    ):
        (tmp_path / "trace_a.jsonl").write_text(
            '{"type": "span", "name": "s", "seconds": 0.1}\n'
        )
        monkeypatch.setenv(obs.ENV_TRACE_DIR, str(tmp_path))
        assert main(["trace-report"]) == 0
        assert "trace files: 1" in capsys.readouterr().out
