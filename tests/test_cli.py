"""Integration tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_tables_smoke(self, capsys):
        assert main(["tables", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "Average reduction in running time" in output
        assert "Paper" in output

    def test_figures_smoke(self, capsys):
        assert main(["figures", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        for figure in ("Figure 3", "Figure 4", "Figure 5", "Figure 6",
                       "Figure 7"):
            assert figure in output

    def test_report_smoke(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["report", "--scale", "smoke"]) == 0
        assert (tmp_path / "EXPERIMENTS.md").exists()

    def test_jobs_flag(self, capsys):
        from repro.experiments.config import default_jobs, set_default_jobs

        try:
            assert main(["tables", "--scale", "smoke", "--jobs", "2"]) == 0
            assert default_jobs() == 2
        finally:
            set_default_jobs(None)
        output = capsys.readouterr().out
        assert "Average reduction in running time" in output

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["tables", "--scale", "galactic"])
