"""Smoke-run every example script — the (b) deliverable must stay runnable."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate what they do"


def test_all_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "targeted_marketing",
        "model_agreement",
        "cross_validation",
        "cluster_segments",
        "dmx_queries",
        "streaming_segments",
    } <= names
