"""Coverage for smaller modules: exceptions, schema, envelope, CLI."""

import pytest

from repro.core.envelope import UpperEnvelope
from repro.core.predicates import FALSE, TRUE, disjunction, equals
from repro.exceptions import (
    CatalogError,
    DatabaseError,
    EnvelopeError,
    ModelError,
    NormalizationError,
    NotFittedError,
    PredicateError,
    RegionError,
    ReproError,
    RewriteError,
    SchemaError,
    WorkloadError,
)
from repro.mining.base import ModelKind
from repro.sql.schema import Column, ColumnType, TableSchema, check_identifier


class TestExceptions:
    @pytest.mark.parametrize(
        "exc",
        [
            PredicateError,
            NormalizationError,
            SchemaError,
            ModelError,
            NotFittedError,
            EnvelopeError,
            RegionError,
            RewriteError,
            CatalogError,
            DatabaseError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, ReproError)

    def test_specific_hierarchies(self):
        assert issubclass(NormalizationError, PredicateError)
        assert issubclass(NotFittedError, ModelError)
        assert issubclass(RegionError, EnvelopeError)
        assert issubclass(CatalogError, RewriteError)


class TestSchema:
    def test_identifier_validation(self):
        assert check_identifier("good_name1") == "good_name1"
        for bad in ("1bad", "has space", 'quo"te', "semi;colon", ""):
            with pytest.raises(SchemaError):
                check_identifier(bad)

    def test_column_type_inference(self):
        assert ColumnType.for_value(3) is ColumnType.INTEGER
        assert ColumnType.for_value(3.5) is ColumnType.REAL
        assert ColumnType.for_value("x") is ColumnType.TEXT
        with pytest.raises(SchemaError):
            ColumnType.for_value(True)

    def test_table_schema_from_rows(self):
        schema = TableSchema.from_rows("t", [{"a": 1, "b": "x"}])
        assert schema.column_names == ("a", "b")
        assert "CREATE TABLE" in schema.create_statement()

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                (
                    Column("a", ColumnType.INTEGER),
                    Column("a", ColumnType.TEXT),
                ),
            )

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ())
        with pytest.raises(SchemaError):
            TableSchema.from_rows("t", [])

    def test_unknown_column_lookup(self):
        schema = TableSchema.from_rows("t", [{"a": 1}])
        with pytest.raises(SchemaError):
            schema.column("missing")


class TestUpperEnvelopeObject:
    def make(self, predicate):
        return UpperEnvelope(
            model_name="m",
            model_kind=ModelKind.DECISION_TREE,
            class_label="c",
            predicate=predicate,
            exact=True,
            seconds=0.001,
            derivation="tree-paths",
        )

    def test_false_detection(self):
        assert self.make(FALSE).is_false
        assert not self.make(TRUE).is_false

    def test_counts(self):
        predicate = disjunction([equals("a", 1), equals("a", 2)])
        envelope = self.make(predicate)
        assert envelope.n_disjuncts == 2
        assert envelope.n_atoms == 2

    def test_admits(self):
        envelope = self.make(equals("a", 1))
        assert envelope.admits({"a": 1})
        assert not envelope.admits({"a": 2})


class TestCLI:
    def test_help_runs(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["--help"])

    def test_rejects_unknown_artifact(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestVersion:
    def test_version_string(self):
        import repro

        assert repro.__version__ == "1.1.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
