"""Tests for workload files (the Section 5.1 artifact)."""

import pytest

from repro.core.derive import derive_envelopes
from repro.exceptions import WorkloadError
from repro.workload.files import read_workload_file, write_workload_file


class TestWorkloadFiles:
    def test_round_trip(self, customer_tree, tmp_path):
        envelopes = derive_envelopes(customer_tree)
        path = write_workload_file(
            tmp_path / "workload.sql", "customers", envelopes
        )
        statements = read_workload_file(path)
        assert len(statements) == len(envelopes)
        for statement in statements:
            assert statement.startswith("SELECT * FROM [customers]")

    def test_statements_are_executable(self, customer_tree, customer_rows, tmp_path):
        from repro.sql.database import Database, load_table
        from tests.conftest import CUSTOMER_FEATURES

        envelopes = derive_envelopes(customer_tree)
        path = write_workload_file(tmp_path / "w.sql", "t", envelopes)
        with Database() as db:
            load_table(
                db,
                "t",
                [{c: r[c] for c in CUSTOMER_FEATURES} for r in customer_rows],
            )
            for statement in read_workload_file(path):
                db.query_rows(statement)  # must not raise

    def test_empty_envelopes_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            write_workload_file(tmp_path / "w.sql", "t", {})

    def test_empty_file_rejected(self, tmp_path):
        target = tmp_path / "empty.sql"
        target.write_text("-- nothing here\n")
        with pytest.raises(WorkloadError):
            read_workload_file(target)
