"""Tests for the Section 4.2 gates: selectivity and predicate complexity."""

import pytest

from repro.core.derive import derive_envelopes
from repro.data.generators import generate
from repro.mining.decision_tree import DecisionTreeLearner
from repro.workload.runner import load_dataset, run_family


@pytest.fixture(scope="module")
def trained():
    dataset = generate("hypothyroid", train_size=400, seed=5)
    model = DecisionTreeLearner(
        dataset.feature_columns,
        dataset.target_column,
        max_depth=8,
        name="gate_tree",
    ).fit(dataset.train_rows)
    return dataset, model, derive_envelopes(model)


class TestSelectivityGate:
    def test_dominant_class_is_gated(self, trained):
        dataset, model, envelopes = trained
        loaded = load_dataset(dataset, rows_target=4000)
        try:
            measurements = run_family(
                loaded,
                "decision_tree",
                model,
                envelopes,
                repeats=1,
                selectivity_gate=0.2,
            )
        finally:
            loaded.db.close()
        dominant = max(measurements, key=lambda m: m.original_selectivity)
        assert dominant.original_selectivity > 0.5
        assert not dominant.envelope_used
        # A gated query runs the plain scan: zero reduction by definition.
        assert dominant.reduction == pytest.approx(0.0)

    def test_gate_disabled_pushes_everything(self, trained):
        dataset, model, envelopes = trained
        loaded = load_dataset(dataset, rows_target=4000)
        try:
            measurements = run_family(
                loaded,
                "decision_tree",
                model,
                envelopes,
                repeats=1,
                selectivity_gate=None,
            )
        finally:
            loaded.db.close()
        assert all(m.envelope_used for m in measurements)


class TestComplexityGate:
    def test_atom_budget_strips_envelope(self, trained):
        dataset, model, envelopes = trained
        loaded = load_dataset(dataset, rows_target=4000)
        try:
            measurements = run_family(
                loaded,
                "decision_tree",
                model,
                envelopes,
                repeats=1,
                selectivity_gate=None,
                max_envelope_atoms=1,
            )
        finally:
            loaded.db.close()
        # Every envelope exceeds one atom, so all are stripped.
        assert all(not m.envelope_used for m in measurements)


class TestExecutorGate:
    def test_executor_strips_unselective_envelope(self, trained):
        from repro.core.catalog import ModelCatalog
        from repro.core.optimizer import MiningQuery
        from repro.core.rewrite import PredictionEquals
        from repro.sql.miningext import PredictionJoinExecutor

        dataset, model, envelopes = trained
        catalog = ModelCatalog()
        catalog.register(model, envelopes=envelopes)
        loaded = load_dataset(dataset, rows_target=4000)
        try:
            executor = PredictionJoinExecutor(
                loaded.db, catalog, selectivity_gate=0.05
            )
            dominant = max(
                model.class_labels,
                key=lambda label: loaded.db.selectivity(
                    loaded.table, envelopes[label].predicate
                ),
            )
            query = MiningQuery(
                loaded.table,
                mining_predicates=(
                    PredictionEquals(model.name, dominant),
                ),
            )
            report = executor.execute_optimized(query)
            # The envelope was stripped, so the SQL fetched everything and
            # the model filtered: same rows as extract-and-mine.
            naive = executor.execute_naive(query)
            assert report.rows_fetched == naive.rows_fetched
            assert report.rows_returned == naive.rows_returned
        finally:
            loaded.db.close()
