"""Tests for the Section 5.1 evaluation harness and its reports."""

import pytest

from repro.data.generators import generate
from repro.exceptions import WorkloadError
from repro.mining.decision_tree import DecisionTreeLearner
from repro.core.derive import derive_envelopes
from repro.sql.planner import AccessPath
from repro.workload.measurement import (
    FAMILY_DECISION_TREE,
    QueryMeasurement,
)
from repro.workload.report import (
    format_table,
    plan_change_by_dataset,
    plan_change_by_family,
    reduction_by_selectivity,
    runtime_reduction_by_family,
    tightness_scatter,
    tightness_summary,
)
from repro.workload.runner import (
    load_dataset,
    original_selectivities,
    run_family,
    verify_envelope_soundness,
)


@pytest.fixture(scope="module")
def trained():
    dataset = generate("hypothyroid", train_size=400, seed=2)
    model = DecisionTreeLearner(
        dataset.feature_columns,
        dataset.target_column,
        max_depth=8,
        name="tree_hypo",
    ).fit(dataset.train_rows)
    envelopes = derive_envelopes(model)
    return dataset, model, envelopes


class TestRunner:
    def test_load_dataset_doubles(self, trained):
        dataset, model, envelopes = trained
        loaded = load_dataset(dataset, rows_target=3000)
        try:
            assert loaded.rows_total >= 3000
            assert loaded.rows_total % len(dataset.train_rows) == 0
            assert loaded.scan_seconds > 0
        finally:
            loaded.db.close()

    def test_label_column_not_loaded(self, trained):
        dataset, model, envelopes = trained
        loaded = load_dataset(dataset, rows_target=1000)
        try:
            columns = loaded.db.schema(loaded.table).column_names
            assert "label" not in columns
        finally:
            loaded.db.close()

    def test_original_selectivities_sum_to_one(self, trained):
        dataset, model, envelopes = trained
        selectivities = original_selectivities(dataset, model)
        assert sum(selectivities.values()) == pytest.approx(1.0)

    def test_run_family_measurements(self, trained):
        dataset, model, envelopes = trained
        loaded = load_dataset(dataset, rows_target=4000)
        try:
            measurements = run_family(
                loaded, FAMILY_DECISION_TREE, model, envelopes, repeats=1
            )
        finally:
            loaded.db.close()
        assert len(measurements) == len(model.class_labels)
        for m in measurements:
            assert 0.0 <= m.original_selectivity <= 1.0
            assert 0.0 <= m.envelope_selectivity <= 1.0
            # Exact tree envelopes: selectivities must agree closely.
            assert m.envelope_selectivity == pytest.approx(
                m.original_selectivity, abs=1e-9
            )

    def test_rare_class_gets_indexed_plan(self, trained):
        dataset, model, envelopes = trained
        loaded = load_dataset(dataset, rows_target=8000)
        try:
            measurements = run_family(
                loaded, FAMILY_DECISION_TREE, model, envelopes, repeats=1
            )
        finally:
            loaded.db.close()
        rare = [m for m in measurements if m.original_selectivity < 0.1]
        assert rare
        assert any(
            m.access_path is AccessPath.INDEX_SEARCH for m in rare
        )

    def test_soundness_verifier_passes(self, trained):
        dataset, model, envelopes = trained
        verify_envelope_soundness(dataset, model, envelopes)

    def test_soundness_verifier_catches_violation(self, trained):
        from repro.core.envelope import UpperEnvelope
        from repro.core.predicates import FALSE
        from repro.mining.base import ModelKind

        dataset, model, envelopes = trained
        broken = dict(envelopes)
        label = model.class_labels[0]
        broken[label] = UpperEnvelope(
            model_name=model.name,
            model_kind=ModelKind.DECISION_TREE,
            class_label=label,
            predicate=FALSE,
            exact=False,
            seconds=0.0,
            derivation="broken",
        )
        with pytest.raises(WorkloadError):
            verify_envelope_soundness(dataset, model, broken)


def make_measurement(**overrides) -> QueryMeasurement:
    defaults = dict(
        dataset="d",
        family="decision_tree",
        model_name="m",
        class_label="c",
        original_selectivity=0.05,
        envelope_selectivity=0.06,
        envelope_disjuncts=3,
        envelope_exact=False,
        envelope_is_false=False,
        envelope_used=True,
        access_path=AccessPath.INDEX_SEARCH,
        plan_changed=True,
        scan_seconds=1.0,
        query_seconds=0.2,
        derive_seconds=0.01,
        rows_total=1000,
        rows_matched=60,
    )
    defaults.update(overrides)
    return QueryMeasurement(**defaults)


class TestReports:
    def test_reduction_property(self):
        m = make_measurement(scan_seconds=1.0, query_seconds=0.25)
        assert m.reduction == pytest.approx(0.75)

    def test_runtime_reduction_by_family(self):
        ms = [
            make_measurement(query_seconds=0.2),
            make_measurement(query_seconds=0.6),
        ]
        result = runtime_reduction_by_family(ms)
        assert result["decision_tree"] == pytest.approx(60.0)

    def test_plan_change_by_family(self):
        ms = [
            make_measurement(plan_changed=True),
            make_measurement(plan_changed=False),
        ]
        assert plan_change_by_family(ms)["decision_tree"] == 50.0

    def test_plan_change_by_dataset(self):
        ms = [
            make_measurement(dataset="a", plan_changed=True),
            make_measurement(dataset="a", plan_changed=False),
            make_measurement(dataset="b", plan_changed=False),
        ]
        result = plan_change_by_dataset(ms, "decision_tree")
        assert result == {"a": 50.0, "b": 0.0}

    def test_selectivity_buckets_partition(self):
        ms = [
            make_measurement(original_selectivity=s, envelope_selectivity=s)
            for s in (0.005, 0.05, 0.3, 0.7)
        ]
        rows = reduction_by_selectivity(ms)
        assert [r.original_count for r in rows] == [1, 1, 1, 1]

    def test_tightness_scatter_families(self):
        ms = [
            make_measurement(family="naive_bayes"),
            make_measurement(family="clustering"),
            make_measurement(family="decision_tree"),
        ]
        points = tightness_scatter(ms)
        assert {p.family for p in points} == {"naive_bayes", "clustering"}

    def test_tightness_summary(self):
        ms = [
            make_measurement(
                family="naive_bayes",
                original_selectivity=0.05,
                envelope_selectivity=0.06,
            ),
            make_measurement(
                family="naive_bayes",
                original_selectivity=0.4,
                envelope_selectivity=0.9,
            ),
        ]
        summary = tightness_summary(tightness_scatter(ms))
        assert summary["tight_fraction"] == pytest.approx(0.5)

    def test_empty_measurements_rejected(self):
        with pytest.raises(WorkloadError):
            runtime_reduction_by_family([])

    def test_format_table(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("x", "y")])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_tightness_ratio_guard(self):
        m = make_measurement(
            original_selectivity=0.0, envelope_selectivity=0.0
        )
        assert m.tightness_ratio == 1.0
